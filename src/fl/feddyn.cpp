#include "fl/feddyn.h"

namespace fedclust::fl {

FedDyn::FedDyn(Federation& fed, float alpha)
    : FlAlgorithm(fed), alpha_(alpha) {}

void FedDyn::setup() {
  global_ = fed_.init_params();
  h_client_.assign(fed_.n_clients(),
                   std::vector<float>(fed_.model_size(), 0.0f));
  h_server_.assign(fed_.model_size(), 0.0);
}

void FedDyn::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  // The dynamic regularizer decomposes into a constant gradient offset
  // (-h_i) plus a proximal pull toward theta with coefficient alpha — both
  // supported natively by the optimizer.
  LocalTrainOptions opts = fed_.cfg().local;
  opts.prox_mu = alpha_;

  std::vector<std::vector<float>> updates;
  std::vector<double> weights;
  for (const std::size_t c : sampled) {
    fed_.comm().download_floats(p);
    std::vector<float> offset(p);
    for (std::size_t j = 0; j < p; ++j) offset[j] = -h_client_[c][j];
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, opts, fed_.train_rng(c, r), &global_, &offset);
    const auto local = ws.flat_params();
    for (std::size_t j = 0; j < p; ++j) {
      h_client_[c][j] -= alpha_ * (local[j] - global_[j]);
    }
    fed_.comm().upload_floats(p);
    updates.push_back(local);
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
  }

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    entries.emplace_back(&updates[i], weights[i]);
  }
  const auto mean_w = weighted_average(entries);

  // h <- h - alpha * (|S|/N) * (mean(w_i) - theta); theta <- mean - h/alpha.
  const double frac = static_cast<double>(sampled.size()) /
                      static_cast<double>(fed_.n_clients());
  for (std::size_t j = 0; j < p; ++j) {
    h_server_[j] -=
        alpha_ * frac * (static_cast<double>(mean_w[j]) - global_[j]);
    global_[j] =
        mean_w[j] - static_cast<float>(h_server_[j] / alpha_);
  }
}

double FedDyn::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

}  // namespace fedclust::fl
