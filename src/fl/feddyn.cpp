#include "fl/feddyn.h"

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

FedDyn::FedDyn(Federation& fed, float alpha)
    : FlAlgorithm(fed), alpha_(alpha) {}

void FedDyn::setup() {
  global_ = fed_.init_params();
  h_client_.reset(fed_.n_clients(),
                  std::vector<float>(fed_.model_size(), 0.0f));
  h_server_.assign(fed_.model_size(), 0.0);
}

void FedDyn::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  // The dynamic regularizer decomposes into a constant gradient offset
  // (-h_i) plus a proximal pull toward theta with coefficient alpha — both
  // supported natively by the optimizer.
  LocalTrainOptions opts = fed_.cfg().local;
  opts.prox_mu = alpha_;

  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;
        job.opts = opts;
        job.rng = fed_.train_rng(c, r);
        job.prox_ref = &global_;
        // Workers only read h_i (get() never materializes); refreshes are
        // sequential, after the fan-out joins.
        const std::vector<float>& h = h_client_.get(c);
        std::vector<float> offset(p);
        for (std::size_t j = 0; j < p; ++j) offset[j] = -h[j];
        job.grad_offset = std::move(offset);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = r;
        return job;
      });

  if (!any_delivered(results)) {
    // All updates lost: θ, h_i, and the server state carry forward.
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;
  }

  // Lagged-gradient refresh per *delivered* participant (each client's h is
  // touched by at most one result, so index order is just the sequential
  // order); the server never learns about lost updates.
  for (const auto& res : results) {
    if (!res.delivered) continue;
    const auto& local = res.params;
    auto& h = h_client_.touch(res.client);
    for (std::size_t j = 0; j < p; ++j) {
      h[j] -= alpha_ * (local[j] - global_[j]);
    }
  }

  const auto mean_w = weighted_average(to_entries(results));

  // h <- h - alpha * (|S|/N) * (mean(w_i) - theta); theta <- mean - h/alpha.
  const double frac = static_cast<double>(sampled.size()) /
                      static_cast<double>(fed_.n_clients());
  for (std::size_t j = 0; j < p; ++j) {
    h_server_[j] -=
        alpha_ * frac * (static_cast<double>(mean_w[j]) - global_[j]);
    global_[j] =
        mean_w[j] - static_cast<float>(h_server_[j] / alpha_);
  }
}

double FedDyn::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void FedDyn::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
  h_client_.save(w);
  w.write_f64_vec(h_server_);
}

void FedDyn::load_state(util::BinaryReader& r) {
  global_ = r.read_f32_vec();
  // Resume skips setup(): rebuild the sparse default (zeros) before loading
  // the touched slots.
  h_client_.reset(fed_.n_clients(),
                  std::vector<float>(fed_.model_size(), 0.0f));
  h_client_.load(r);
  h_server_ = r.read_f64_vec();
}

}  // namespace fedclust::fl
