#include "fl/algorithm.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fedclust::fl {

Trace FlAlgorithm::run() {
  Trace trace;
  trace.method = name();
  trace.dataset = fed_.cfg().data_spec.name;

  {
    OBS_SPAN("fl.setup");
    const util::Stopwatch setup_sw;
    setup();
    OBS_HISTOGRAM_OBSERVE("fl.setup_seconds", setup_sw.seconds());
  }
  const std::size_t rounds = fed_.cfg().rounds;
  const std::size_t every = std::max<std::size_t>(1, fed_.cfg().eval_every);
  for (std::size_t r = 0; r < rounds; ++r) {
    const util::Stopwatch round_sw;
    {
      OBS_SPAN_ARG("fl.round", r);
      round(r);
    }
    const double train_seconds = round_sw.seconds();
    OBS_HISTOGRAM_OBSERVE("fl.round_seconds", train_seconds);
    OBS_COUNTER_ADD("fl.rounds", 1);
    if (r % every == 0 || r + 1 == rounds) {
      const util::Stopwatch eval_sw;
      RoundRecord rec;
      rec.round = r;
      {
        OBS_SPAN_ARG("fl.eval_sweep", r);
        rec.avg_local_test_acc = evaluate_all();
      }
      const double eval_seconds = eval_sw.seconds();
      OBS_HISTOGRAM_OBSERVE("fl.eval_seconds", eval_seconds);
      rec.bytes_up = fed_.comm().bytes_up();
      rec.bytes_down = fed_.comm().bytes_down();
      rec.n_clusters = current_clusters();
      trace.records.push_back(rec);
      FC_LOG_DEBUG << name() << "/" << trace.dataset << " round " << r
                   << " acc=" << rec.avg_local_test_acc
                   << " clusters=" << rec.n_clusters;
      auto& registry = obs::MetricsRegistry::instance();
      if (obs::MetricsRegistry::enabled() && registry.round_log_open()) {
        registry.log_round(
            {{"round", static_cast<double>(r)},
             {"acc", rec.avg_local_test_acc},
             {"clusters", static_cast<double>(rec.n_clusters)},
             {"mb_total",
              static_cast<double>(rec.bytes_up + rec.bytes_down) * 8.0 /
                  1e6},
             {"round_seconds", train_seconds},
             {"eval_seconds", eval_seconds}});
      }
      if (observer_) observer_(rec, train_seconds + eval_seconds);
    }
  }
  return trace;
}

}  // namespace fedclust::fl
