#include "fl/algorithm.h"

#include "util/logging.h"

namespace fedclust::fl {

Trace FlAlgorithm::run() {
  Trace trace;
  trace.method = name();
  trace.dataset = fed_.cfg().data_spec.name;

  setup();
  const std::size_t rounds = fed_.cfg().rounds;
  const std::size_t every = std::max<std::size_t>(1, fed_.cfg().eval_every);
  for (std::size_t r = 0; r < rounds; ++r) {
    round(r);
    if (r % every == 0 || r + 1 == rounds) {
      RoundRecord rec;
      rec.round = r;
      rec.avg_local_test_acc = evaluate_all();
      rec.bytes_up = fed_.comm().bytes_up();
      rec.bytes_down = fed_.comm().bytes_down();
      rec.n_clusters = current_clusters();
      trace.records.push_back(rec);
      FC_LOG_DEBUG << name() << "/" << trace.dataset << " round " << r
                   << " acc=" << rec.avg_local_test_acc
                   << " clusters=" << rec.n_clusters;
    }
  }
  return trace;
}

}  // namespace fedclust::fl
