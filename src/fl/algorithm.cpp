#include "fl/algorithm.h"

#include <sstream>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/signal.h"
#include "util/timer.h"

namespace fedclust::fl {

namespace {

std::string algo_state_blob(const FlAlgorithm& algo) {
  std::ostringstream os(std::ios::binary);
  util::BinaryWriter w(os);
  algo.save_state(w);
  return os.str();
}

}  // namespace

void FlAlgorithm::resume_from(RunSnapshot snap) {
  const std::uint64_t want = config_fingerprint(fed_.cfg());
  if (snap.config_fingerprint != want) {
    std::ostringstream msg;
    msg << "snapshot config fingerprint mismatch: snapshot 0x" << std::hex
        << snap.config_fingerprint << ", live config 0x" << want
        << " — resume requires the exact configuration that wrote the "
           "snapshot (see its manifest.json)";
    throw SnapshotError(msg.str());
  }
  if (snap.method != name()) {
    throw SnapshotError("snapshot was written by method '" + snap.method +
                        "', not '" + name() + "'");
  }
  if (snap.seed != fed_.cfg().seed) {
    throw SnapshotError("snapshot seed mismatch");
  }
  if (snap.next_round > fed_.cfg().rounds) {
    throw SnapshotError("snapshot next_round " +
                        std::to_string(snap.next_round) +
                        " exceeds configured rounds " +
                        std::to_string(fed_.cfg().rounds));
  }
  if (snap.rng_probes != rng_probes_for(fed_.cfg())) {
    throw SnapshotError(
        "snapshot RNG probe mismatch: the RNG algorithm or stream-split "
        "layout changed since the snapshot was written, so a resumed run "
        "could not reproduce the uninterrupted trajectory");
  }
  resume_ = std::move(snap);
}

RunSnapshot FlAlgorithm::capture_snapshot(
    std::size_t next_round, const std::vector<RoundRecord>& records) {
  RunSnapshot snap;
  snap.config_fingerprint = config_fingerprint(fed_.cfg());
  snap.seed = fed_.cfg().seed;
  snap.next_round = next_round;
  snap.method = name();
  snap.dataset = fed_.cfg().data_spec.name;
  snap.comm = fed_.comm().ledger();
  snap.records = records;
  if (obs::MetricsRegistry::enabled()) {
    snap.counters = obs::MetricsRegistry::instance().snapshot().counters;
  }
  snap.rng_probes = rng_probes_for(fed_.cfg());
  const std::string blob = algo_state_blob(*this);
  snap.algo_state.assign(blob.begin(), blob.end());
  return snap;
}

std::uint32_t FlAlgorithm::state_crc32c() const {
  const std::string blob = algo_state_blob(*this);
  return util::crc32c(reinterpret_cast<const std::uint8_t*>(blob.data()),
                      blob.size());
}

Trace FlAlgorithm::run() {
  Trace trace;
  trace.method = name();
  trace.dataset = fed_.cfg().data_spec.name;

  std::size_t start_round = 0;
  if (resume_) {
    // Everything setup() produced (including the comm it billed) lives in
    // the restored state, so setup() must not run again.
    fed_.comm().restore(resume_->comm);
    trace.records = resume_->records;
    if (obs::MetricsRegistry::enabled()) {
      auto& registry = obs::MetricsRegistry::instance();
      for (const auto& [cname, value] : resume_->counters) {
        auto& c = registry.counter(cname);
        c.reset();
        c.add(value);
      }
    }
    {
      std::istringstream is(
          std::string(resume_->algo_state.begin(), resume_->algo_state.end()),
          std::ios::binary);
      util::BinaryReader rd(is);
      load_state(rd);
    }
    start_round = resume_->next_round;
    resume_.reset();
    FC_LOG_INFO << name() << "/" << trace.dataset << " resumed at round "
                << start_round;
  } else {
    OBS_SPAN("fl.setup");
    const util::Stopwatch setup_sw;
    setup();
    OBS_HISTOGRAM_OBSERVE("fl.setup_seconds", setup_sw.seconds());
  }
  if (obs::EventJournal::enabled()) {
    // Setup may run warm-up rounds (FedClust profiling, IFCA trials);
    // flush their rows before round 0's so every flush stays small.
    obs::EventJournal::instance().flush_round();
  }
  const std::size_t rounds = fed_.cfg().rounds;
  const std::size_t every = std::max<std::size_t>(1, fed_.cfg().eval_every);
  for (std::size_t r = start_round; r < rounds; ++r) {
    const util::Stopwatch round_sw;
    {
      OBS_SPAN_ARG("fl.round", r);
      round(r);
    }
    const double train_seconds = round_sw.seconds();
    OBS_HISTOGRAM_OBSERVE("fl.round_seconds", train_seconds);
    OBS_COUNTER_ADD("fl.rounds", 1);
    if (r % every == 0 || r + 1 == rounds) {
      const util::Stopwatch eval_sw;
      RoundRecord rec;
      rec.round = r;
      {
        OBS_SPAN_ARG("fl.eval_sweep", r);
        // The eval sweep runs inside Federation with no round in hand; the
        // context stamps its kEval rows with this round.
        if (obs::EventJournal::enabled()) {
          obs::EventJournal::instance().set_round_context(r);
        }
        rec.avg_local_test_acc = evaluate_all();
        if (obs::EventJournal::enabled()) {
          obs::EventJournal::instance().clear_round_context();
        }
      }
      const double eval_seconds = eval_sw.seconds();
      OBS_HISTOGRAM_OBSERVE("fl.eval_seconds", eval_seconds);
      rec.bytes_up = fed_.comm().bytes_up();
      rec.bytes_down = fed_.comm().bytes_down();
      rec.n_clusters = current_clusters();
      trace.records.push_back(rec);
      FC_LOG_DEBUG << name() << "/" << trace.dataset << " round " << r
                   << " acc=" << rec.avg_local_test_acc
                   << " clusters=" << rec.n_clusters;
      // Refresh the RSS high-water mark so it rides into this round's JSONL
      // line (and the end-of-run summary) alongside the store.cache_*
      // counters — the scale smoke asserts against both.
      OBS_GAUGE_SET("mem.peak_rss_kb", util::peak_rss_kb());
      auto& registry = obs::MetricsRegistry::instance();
      if (obs::MetricsRegistry::enabled() && registry.round_log_open()) {
        registry.log_round(
            {{"round", static_cast<double>(r)},
             {"acc", rec.avg_local_test_acc},
             {"clusters", static_cast<double>(rec.n_clusters)},
             {"mb_total",
              static_cast<double>(rec.bytes_up + rec.bytes_down) * 8.0 /
                  1e6},
             {"round_seconds", train_seconds},
             {"eval_seconds", eval_seconds}});
      }
      if (observer_) observer_(rec, train_seconds + eval_seconds);
    }
    // Checkpoints land at boundary r+1: after round r's work AND its
    // evaluation, so the snapshot's trace records already include this
    // round and the resumed run re-enters at exactly r+1.
    const std::size_t boundary = r + 1;
    const bool on_grid =
        checkpoint_.every > 0 && boundary % checkpoint_.every == 0;
    const bool at_halt =
        checkpoint_.halt_after > 0 && boundary == checkpoint_.halt_after;
    if (!checkpoint_.dir.empty() && (on_grid || at_halt)) {
      OBS_SPAN_ARG("fl.checkpoint", boundary);
      write_snapshot(capture_snapshot(boundary, trace.records),
                     checkpoint_.dir + "/" + snapshot_filename(boundary));
      OBS_COUNTER_ADD("fl.checkpoints", 1);
    }
    if (obs::EventJournal::enabled()) {
      // Round boundary: parallel work has joined, so the flush walks the
      // per-thread buffers quiescently.
      obs::EventJournal::instance().flush_round();
    }
    if (at_halt) {
      FC_LOG_INFO << name() << "/" << trace.dataset
                  << " halting after boundary " << boundary
                  << " (checkpoint halt_after)";
      break;
    }
    // Graceful SIGINT/SIGTERM: the in-flight round (and its eval) just
    // finished, so stop at this boundary with a final snapshot — the run
    // resumes from here instead of being lost. Only boundaries that did
    // not already write one above get the extra snapshot.
    if (util::shutdown_requested() && boundary < rounds) {
      if (!checkpoint_.dir.empty() && !(on_grid || at_halt)) {
        OBS_SPAN_ARG("fl.checkpoint", boundary);
        write_snapshot(capture_snapshot(boundary, trace.records),
                       checkpoint_.dir + "/" + snapshot_filename(boundary));
        OBS_COUNTER_ADD("fl.checkpoints", 1);
      }
      FC_LOG_INFO << name() << "/" << trace.dataset
                  << " stopping at boundary " << boundary
                  << " (shutdown requested)";
      break;
    }
  }
  return trace;
}

}  // namespace fedclust::fl
