#pragma once

// Per-FedAvg (Fallah et al., 2020), first-order variant: the server learns
// a meta-initialization. Each local step takes an inner SGD step with rate
// alpha on one batch, then applies the gradient evaluated at the adapted
// point with meta rate beta. At evaluation time each client personalizes
// the meta-model with a few epochs of plain SGD before testing.

#include "fl/algorithm.h"

namespace fedclust::fl {

class PerFedAvg : public FlAlgorithm {
 public:
  explicit PerFedAvg(Federation& fed);

  std::string name() const override { return "PerFedAvg"; }

  const std::vector<float>& meta_params() const { return meta_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  // One FO-MAML local pass for client c starting from `start`, computed
  // through the given workspace; returns the updated meta-parameters.
  std::vector<float> maml_train(nn::Model& ws, std::size_t c, std::size_t r,
                                const std::vector<float>& start);

  std::vector<float> meta_;
};

}  // namespace fedclust::fl
