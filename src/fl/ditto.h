#pragma once

// Ditto (Li et al., 2021) — extension baseline (cited as [20] in the
// paper). A global model is trained exactly as FedAvg; in parallel every
// client keeps a *personal* model v_i trained on its own data with a
// proximal pull toward the current global model:
//   v_i <- v_i - lr (grad f_i(v_i) + lambda (v_i - w_global)).
// Evaluation uses the personal models, so Ditto interpolates between Local
// (lambda -> 0) and the global model (lambda -> inf).

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace fedclust::fl {

class Ditto : public FlAlgorithm {
 public:
  explicit Ditto(Federation& fed, float lambda = 0.5f);

  std::string name() const override { return "Ditto"; }

  const std::vector<float>& global_params() const { return global_; }
  const std::vector<float>& personal_params(std::size_t client) const {
    return personal_.get(client);
  }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  float lambda_;
  std::vector<float> global_;
  SparseClientParams personal_;  // untouched clients hold θ0
};

}  // namespace fedclust::fl
