#include "fl/flis.h"

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "data/synthetic.h"
#include "fl/cluster_common.h"
#include "fl/parallel_round.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace fedclust::fl {

Flis::Flis(Federation& fed, std::size_t proxy_per_class, std::size_t k)
    : FlAlgorithm(fed), proxy_per_class_(proxy_per_class), k_(k) {}

void Flis::setup() {
  const auto& spec = fed_.cfg().data_spec;
  const std::size_t n = fed_.n_clients();

  // Server-side proxy data: a balanced IID sample from the same generator
  // (the data-availability assumption the FedClust paper criticizes).
  const data::SyntheticGenerator gen(spec, fed_.cfg().seed);
  data::Dataset proxy(spec.channels, spec.hw, spec.num_classes);
  util::Rng rng = util::Rng(fed_.cfg().seed).split(0xF115);
  for (std::size_t c = 0; c < spec.num_classes; ++c) {
    for (std::size_t i = 0; i < proxy_per_class_; ++i) {
      proxy.add(gen.sample(static_cast<std::int64_t>(c), rng),
                static_cast<std::int64_t>(c));
    }
  }
  std::vector<std::size_t> all(proxy.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto proxy_images = proxy.batch_images(all);

  // Each client warms up from θ0 and reports its softmax profile over the
  // proxy set; the warmups run client-parallel like every other all-client
  // sweep.
  const std::size_t p = fed_.model_size();
  // θ0 is serialized once; every client warms up from the wire-decoded
  // copy, and each profile travels back through a checksummed envelope.
  const std::vector<float> rx_init = fed_.through_wire(
      wire::MessageKind::kModelPull, fed_.init_params(), wire::kServerSender,
      0xF1150000);
  std::vector<std::vector<float>> profiles(n);
  OBS_SPAN("flis.warmup");
  ParallelRoundRunner runner(fed_);
  runner.for_each_index(n, [&](std::size_t c, nn::Model& ws) {
    OBS_SPAN_ARG("client.warmup", c);
    fed_.bill_download(p);
    ws.set_flat_params(rx_init);
    fed_.client(c)->train(ws, fed_.cfg().local,
                          fed_.train_rng(c, 0xF1150000));
    auto logits = ws.forward(proxy_images);
    tensor::softmax_rows_(logits);
    profiles[c] = fed_.upload_payload(wire::MessageKind::kWarmupWeights,
                                      logits.vec(), c, 0xF1150000);
  });

  const auto dist = clustering::cosine_distance_matrix(profiles);
  const auto dendro =
      clustering::agglomerative(dist, clustering::Linkage::kAverage);
  assignment_ = k_ > 0
                    ? clustering::cut_to_k(dendro, k_)
                    : clustering::cut_by_threshold(
                          dendro, clustering::gap_threshold(dendro));
  cluster_models_.assign(clustering::num_clusters(assignment_),
                         fed_.init_params());
  FC_LOG_DEBUG << "FLIS formed " << cluster_models_.size() << " clusters";
}

void Flis::round(std::size_t r) {
  cluster_fedavg_round(fed_, r, assignment_, cluster_models_);
}

double Flis::evaluate_all() {
  return cluster_average_accuracy(fed_, assignment_, cluster_models_);
}

void Flis::save_state(util::BinaryWriter& w) const {
  write_index_vec(w, assignment_);
  write_nested_f32(w, cluster_models_);
}

void Flis::load_state(util::BinaryReader& r) {
  assignment_ = read_index_vec(r);
  cluster_models_ = read_nested_f32(r);
}

}  // namespace fedclust::fl
