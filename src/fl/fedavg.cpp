#include "fl/fedavg.h"

namespace fedclust::fl {

FedAvg::FedAvg(Federation& fed, float prox_mu)
    : FlAlgorithm(fed), prox_mu_(prox_mu) {}

void FedAvg::setup() { global_ = fed_.init_params(); }

void FedAvg::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  std::vector<std::vector<float>> updates;
  std::vector<double> weights;
  updates.reserve(sampled.size());

  LocalTrainOptions opts = fed_.cfg().local;
  opts.prox_mu = prox_mu_;

  for (const std::size_t c : sampled) {
    fed_.comm().download_floats(p);  // server -> client: global model
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, opts, fed_.train_rng(c, r),
                         prox_mu_ > 0.0f ? &global_ : nullptr);
    fed_.comm().upload_floats(p);  // client -> server: updated model
    updates.push_back(ws.flat_params());
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
  }

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    entries.emplace_back(&updates[i], weights[i]);
  }
  global_ = weighted_average(entries);
}

double FedAvg::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

}  // namespace fedclust::fl
