#include "fl/fedavg.h"

#include "fl/parallel_round.h"

namespace fedclust::fl {

FedAvg::FedAvg(Federation& fed, float prox_mu)
    : FlAlgorithm(fed), prox_mu_(prox_mu) {}

void FedAvg::setup() { global_ = fed_.init_params(); }

void FedAvg::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  LocalTrainOptions opts = fed_.cfg().local;
  opts.prox_mu = prox_mu_;

  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;  // server -> client: global model
        job.opts = opts;
        job.rng = fed_.train_rng(c, r);
        job.prox_ref = prox_mu_ > 0.0f ? &global_ : nullptr;
        job.download_floats = p;
        job.upload_floats = p;  // client -> server: updated model
        job.round = r;
        return job;
      });

  // Lost or quarantined updates are filtered; an all-lost round keeps the
  // current global model.
  aggregate_or_keep(global_, results);
}

double FedAvg::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void FedAvg::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
}

void FedAvg::load_state(util::BinaryReader& r) { global_ = r.read_f32_vec(); }

}  // namespace fedclust::fl
