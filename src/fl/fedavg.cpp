#include "fl/fedavg.h"

#include "fl/parallel_round.h"
#include "fl/stream_agg.h"
#include "obs/metrics.h"

namespace fedclust::fl {

FedAvg::FedAvg(Federation& fed, float prox_mu)
    : FlAlgorithm(fed), prox_mu_(prox_mu) {}

void FedAvg::setup() { global_ = fed_.init_params(); }

void FedAvg::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  LocalTrainOptions opts = fed_.cfg().local;
  opts.prox_mu = prox_mu_;

  // Updates stream straight into the fixed reduction tree as they are
  // delivered — each worker's parameter vector is folded into a double
  // accumulator and freed, so the round holds O(cohort) accumulators, never
  // the whole cohort's float updates.
  StreamingAggregator agg(sampled.size(), p,
                          fed_.int8_aggregation_active());
  ParallelRoundRunner runner(fed_);
  runner.train_clients_into(
      sampled,
      [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;  // server -> client: global model
        job.opts = opts;
        job.rng = fed_.train_rng(c, r);
        job.prox_ref = prox_mu_ > 0.0f ? &global_ : nullptr;
        job.download_floats = p;
        job.upload_floats = p;  // client -> server: updated model
        job.round = r;
        return job;
      },
      [&](std::size_t idx, RoundTrainResult&& res) {
        // Lost or quarantined updates are skipped slots.
        if (res.delivered) {
          agg.submit(idx, res.params.data(), res.params.size(), res.weight,
                     std::move(res.encoded));
        } else {
          agg.skip(idx);
        }
      });

  // An all-lost round keeps the current global model.
  if (!agg.finish(global_)) OBS_COUNTER_ADD("fault.empty_rounds", 1);
}

double FedAvg::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void FedAvg::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
}

void FedAvg::load_state(util::BinaryReader& r) { global_ = r.read_f32_vec(); }

}  // namespace fedclust::fl
