#pragma once

// A simulated FL client: local train/test data plus local-SGD training and
// evaluation routines that operate on a caller-provided workspace model.
//
// Clients never own model parameters — algorithms decide what weights a
// client trains (global model, cluster model, personal model) by loading
// them into the workspace before calling train()/evaluate().

#include <cstdint>
#include <optional>

#include "data/dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace fedclust::fl {

struct LocalTrainOptions {
  std::size_t epochs = 2;
  std::size_t batch_size = 10;
  float lr = 0.01f;
  float momentum = 0.5f;
  float weight_decay = 0.0f;
  // Global gradient-norm clip per SGD step (0 = off). Stabilizes training
  // under heavy label skew, where batch losses occasionally spike.
  float clip_grad_norm = 0.0f;
  // FedProx proximal coefficient; the reference point is passed to train().
  float prox_mu = 0.0f;
};

class SimClient {
 public:
  SimClient(std::size_t id, data::Dataset train, data::Dataset test);

  std::size_t id() const { return id_; }
  std::size_t n_train() const { return train_.size(); }
  std::size_t n_test() const { return test_.size(); }
  const data::Dataset& train_data() const { return train_; }
  const data::Dataset& test_data() const { return test_; }

  // Runs opts.epochs of mini-batch SGD on this client's training data,
  // mutating `model` in place. `rng` drives the shuffle (pass a split,
  // per-(client, round) stream for determinism). prox_ref, when non-null,
  // activates the FedProx proximal pull toward that parameter vector.
  // Returns the mean training loss of the final epoch.
  float train(nn::Model& model, const LocalTrainOptions& opts, util::Rng rng,
              const std::vector<float>* prox_ref = nullptr,
              const std::vector<float>* grad_offset = nullptr) const;

  // Number of SGD steps train() will take — FedNova's tau_i.
  std::size_t local_steps(const LocalTrainOptions& opts) const;

  // Top-1 accuracy on the local test set.
  double evaluate(nn::Model& model) const;

  // Mean loss over the local training data (no updates) — IFCA's cluster
  // selection criterion.
  float train_loss(nn::Model& model) const;

 private:
  std::size_t id_;
  data::Dataset train_;
  data::Dataset test_;
};

}  // namespace fedclust::fl
