#include "fl/comm.h"

#include "fl/wire.h"
#include "obs/metrics.h"

namespace fedclust::fl {

namespace {

// One envelope header per message (see wire.h layout).
std::uint64_t framed_bytes(std::uint64_t encoded_bytes,
                           std::uint64_t messages) {
  return messages * (encoded_bytes + wire::kHeaderSize);
}

}  // namespace

void CommTracker::upload_envelope(std::uint64_t n_floats,
                                  std::uint64_t encoded_bytes,
                                  std::uint64_t messages) {
  if (messages == 0) return;
  const std::uint64_t encoded_total = messages * encoded_bytes;
  const std::uint64_t payload_total = messages * n_floats * 4;
  const std::uint64_t wire_total = framed_bytes(encoded_bytes, messages);
  bytes_up_.fetch_add(encoded_total, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload_total, std::memory_order_relaxed);
  wire_bytes_.fetch_add(wire_total, std::memory_order_relaxed);
  messages_.fetch_add(messages, std::memory_order_relaxed);
  OBS_COUNTER_ADD("comm.bytes_up", encoded_total);
  OBS_COUNTER_ADD("comm.payload_bytes", payload_total);
  OBS_COUNTER_ADD("comm.wire_bytes", wire_total);
  OBS_COUNTER_ADD("comm.messages", messages);
}

void CommTracker::download_envelope(std::uint64_t n_floats,
                                    std::uint64_t encoded_bytes,
                                    std::uint64_t messages) {
  if (messages == 0) return;
  const std::uint64_t encoded_total = messages * encoded_bytes;
  const std::uint64_t payload_total = messages * n_floats * 4;
  const std::uint64_t wire_total = framed_bytes(encoded_bytes, messages);
  bytes_down_.fetch_add(encoded_total, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload_total, std::memory_order_relaxed);
  wire_bytes_.fetch_add(wire_total, std::memory_order_relaxed);
  messages_.fetch_add(messages, std::memory_order_relaxed);
  OBS_COUNTER_ADD("comm.bytes_down", encoded_total);
  OBS_COUNTER_ADD("comm.payload_bytes", payload_total);
  OBS_COUNTER_ADD("comm.wire_bytes", wire_total);
  OBS_COUNTER_ADD("comm.messages", messages);
}

void CommTracker::reset() {
  bytes_up_.store(0, std::memory_order_relaxed);
  bytes_down_.store(0, std::memory_order_relaxed);
  payload_bytes_.store(0, std::memory_order_relaxed);
  wire_bytes_.store(0, std::memory_order_relaxed);
  messages_.store(0, std::memory_order_relaxed);
}

}  // namespace fedclust::fl
