#include "fl/comm.h"

// Header-only for now; this TU anchors the target.
