#pragma once

// LG-FedAvg (Liang et al., 2020): clients keep the lower (representation)
// layers local and only share the top (global) layers. Communication per
// round is just the global-layer parameters, which is what makes LG the
// cheapest method in the paper's Table 5.

#include "fl/algorithm.h"

namespace fedclust::fl {

class LgFedAvg : public FlAlgorithm {
 public:
  explicit LgFedAvg(Federation& fed);

  std::string name() const override { return "LG"; }

  std::size_t global_offset() const { return global_offset_; }
  const std::vector<float>& global_suffix() const { return global_suffix_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  // Offset into the flat vector where the globally shared suffix starts.
  std::size_t global_offset_ = 0;
  std::vector<float> global_suffix_;
  // Per-client persistent full parameter vectors (their local prefix is
  // what personalizes them). Deliberately dense: every client's default is
  // a distinct random init (make_model(1000 + c)), so there is no shared
  // sparse default — LG is not scale-ready under --virtual-clients
  // (docs/INVARIANTS.md §Scale).
  std::vector<std::vector<float>> params_;
};

}  // namespace fedclust::fl
