#pragma once

// First-class communication accounting. Every parameter transfer in the
// simulator goes through a CommTracker, so Table 5's "Mb to reach target
// accuracy" is measured, not estimated.

#include <cstdint>

namespace fedclust::fl {

class CommTracker {
 public:
  // Client -> server transfer of n float32 values.
  void upload_floats(std::uint64_t n) { bytes_up_ += n * 4; }
  // Server -> client transfer.
  void download_floats(std::uint64_t n) { bytes_down_ += n * 4; }

  std::uint64_t bytes_up() const { return bytes_up_; }
  std::uint64_t bytes_down() const { return bytes_down_; }
  std::uint64_t bytes_total() const { return bytes_up_ + bytes_down_; }
  // Megabits, the unit of the paper's Table 5.
  double total_mb() const {
    return static_cast<double>(bytes_total()) * 8.0 / 1e6;
  }

  void reset() {
    bytes_up_ = 0;
    bytes_down_ = 0;
  }

 private:
  std::uint64_t bytes_up_ = 0;
  std::uint64_t bytes_down_ = 0;
};

}  // namespace fedclust::fl
