#pragma once

// First-class communication accounting. Every parameter transfer in the
// simulator goes through a CommTracker, so Table 5's "Mb to reach target
// accuracy" is measured, not estimated.
//
// Since the wire-layer PR, transfers are billed per *envelope*: the tracker
// records the codec-encoded payload bytes that actually crossed the wire
// (what `bytes_up`/`bytes_down` and the paper-facing Mb figures report —
// for the default raw_f32 codec this is exactly the pre-wire n*4), plus two
// side ledgers: the logical float32 payload volume (`payload_bytes`) and
// the full framed volume including envelope headers (`wire_bytes`). The
// payload/wire pair is what the compression-ratio report and the
// `comm.payload_bytes` / `comm.wire_bytes` obs counters are built from.
//
// Counters are relaxed atomics: client-parallel rounds account transfers
// from worker threads concurrently, and byte totals are pure commutative
// sums, so relaxed increments keep the counts exact at any thread count.

#include <atomic>
#include <cstdint>

#include "fl/codec.h"

namespace fedclust::fl {

class CommTracker {
 public:
  // Codec used by the deprecated float-count shims below to derive encoded
  // bytes. Set once at Federation construction, before any transfer.
  void set_codec(wire::CodecId codec) { codec_ = codec; }
  wire::CodecId codec() const { return codec_; }

  // Client -> server: `messages` envelopes, each carrying `n_floats`
  // logical float32 values serialized to `encoded_bytes` payload bytes.
  void upload_envelope(std::uint64_t n_floats, std::uint64_t encoded_bytes,
                       std::uint64_t messages = 1);
  // Server -> client.
  void download_envelope(std::uint64_t n_floats, std::uint64_t encoded_bytes,
                         std::uint64_t messages = 1);

  // Deprecated count-based shims for call sites that never materialize an
  // envelope; they bill one envelope of `n` floats through the configured
  // codec. Prefer upload_envelope/download_envelope with measured bytes.
  void upload_floats(std::uint64_t n) {
    upload_envelope(n, wire::encoded_size(codec_, n));
  }
  void download_floats(std::uint64_t n) {
    download_envelope(n, wire::encoded_size(codec_, n));
  }

  std::uint64_t bytes_up() const {
    return bytes_up_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_down() const {
    return bytes_down_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_total() const { return bytes_up() + bytes_down(); }

  // Logical transfer volume: every moved float at 4 bytes, codec-agnostic.
  std::uint64_t payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }
  // Framed volume: encoded payload plus one header per envelope.
  std::uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  // payload/wire; > 1 when the codec compresses, slightly < 1 for raw_f32
  // (headers). 0 when nothing moved.
  double compression_ratio() const {
    const std::uint64_t w = wire_bytes();
    return w == 0 ? 0.0
                  : static_cast<double>(payload_bytes()) /
                        static_cast<double>(w);
  }

  // Megabits, the unit of the paper's Table 5.
  double total_mb() const {
    return static_cast<double>(bytes_total()) * 8.0 / 1e6;
  }

  void reset();

 private:
  wire::CodecId codec_ = wire::CodecId::kRawF32;
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
};

}  // namespace fedclust::fl
