#pragma once

// First-class communication accounting. Every parameter transfer in the
// simulator goes through a CommTracker, so Table 5's "Mb to reach target
// accuracy" is measured, not estimated.
//
// Counters are relaxed atomics: client-parallel rounds account transfers
// from worker threads concurrently, and byte totals are pure commutative
// sums, so relaxed increments keep the counts exact at any thread count.

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace fedclust::fl {

class CommTracker {
 public:
  // Client -> server transfer of n float32 values.
  void upload_floats(std::uint64_t n) {
    bytes_up_.fetch_add(n * 4, std::memory_order_relaxed);
    OBS_COUNTER_ADD("comm.bytes_up", n * 4);
  }
  // Server -> client transfer.
  void download_floats(std::uint64_t n) {
    bytes_down_.fetch_add(n * 4, std::memory_order_relaxed);
    OBS_COUNTER_ADD("comm.bytes_down", n * 4);
  }

  std::uint64_t bytes_up() const {
    return bytes_up_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_down() const {
    return bytes_down_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_total() const { return bytes_up() + bytes_down(); }
  // Megabits, the unit of the paper's Table 5.
  double total_mb() const {
    return static_cast<double>(bytes_total()) * 8.0 / 1e6;
  }

  void reset() {
    bytes_up_.store(0, std::memory_order_relaxed);
    bytes_down_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
};

}  // namespace fedclust::fl
