#pragma once

// First-class communication accounting. Every parameter transfer in the
// simulator goes through a CommTracker, so Table 5's "Mb to reach target
// accuracy" is measured, not estimated.
//
// Since the wire-layer PR, transfers are billed per *envelope*: the tracker
// records the codec-encoded payload bytes that actually crossed the wire
// (what `bytes_up`/`bytes_down` and the paper-facing Mb figures report —
// for the default raw_f32 codec this is exactly the pre-wire n*4), plus two
// side ledgers: the logical float32 payload volume (`payload_bytes`) and
// the full framed volume including envelope headers (`wire_bytes`). The
// payload/wire pair is what the compression-ratio report and the
// `comm.payload_bytes` / `comm.wire_bytes` obs counters are built from.
//
// Counters are relaxed atomics: client-parallel rounds account transfers
// from worker threads concurrently, and byte totals are pure commutative
// sums, so relaxed increments keep the counts exact at any thread count.

#include <atomic>
#include <cstdint>

#include "fl/codec.h"

namespace fedclust::fl {

// Point-in-time copy of every CommTracker ledger — what run snapshots
// persist so a resumed run's cumulative byte totals continue bit-exactly.
struct CommLedger {
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t messages = 0;

  bool operator==(const CommLedger&) const = default;
};

class CommTracker {
 public:
  // Codec used by the deprecated float-count shims below to derive encoded
  // bytes. Set once at Federation construction, before any transfer.
  void set_codec(wire::CodecId codec) { codec_ = codec; }
  wire::CodecId codec() const { return codec_; }

  // Client -> server: `messages` envelopes, each carrying `n_floats`
  // logical float32 values serialized to `encoded_bytes` payload bytes.
  void upload_envelope(std::uint64_t n_floats, std::uint64_t encoded_bytes,
                       std::uint64_t messages = 1);
  // Server -> client.
  void download_envelope(std::uint64_t n_floats, std::uint64_t encoded_bytes,
                         std::uint64_t messages = 1);

  std::uint64_t bytes_up() const {
    return bytes_up_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_down() const {
    return bytes_down_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_total() const { return bytes_up() + bytes_down(); }

  // Logical transfer volume: every moved float at 4 bytes, codec-agnostic.
  std::uint64_t payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }
  // Framed volume: encoded payload plus one header per envelope.
  std::uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  // payload/wire; > 1 when the codec compresses, slightly < 1 for raw_f32
  // (headers). 0 when nothing moved.
  double compression_ratio() const {
    const std::uint64_t w = wire_bytes();
    return w == 0 ? 0.0
                  : static_cast<double>(payload_bytes()) /
                        static_cast<double>(w);
  }

  // Megabits, the unit of the paper's Table 5.
  double total_mb() const {
    return static_cast<double>(bytes_total()) * 8.0 / 1e6;
  }

  void reset();

  // Snapshot/restore for checkpointed runs. restore() overwrites every
  // ledger; call it only while no transfers are in flight (resume happens
  // before any round work starts).
  CommLedger ledger() const {
    CommLedger l;
    l.bytes_up = bytes_up();
    l.bytes_down = bytes_down();
    l.payload_bytes = payload_bytes();
    l.wire_bytes = wire_bytes();
    l.messages = messages();
    return l;
  }
  void restore(const CommLedger& l) {
    bytes_up_.store(l.bytes_up, std::memory_order_relaxed);
    bytes_down_.store(l.bytes_down, std::memory_order_relaxed);
    payload_bytes_.store(l.payload_bytes, std::memory_order_relaxed);
    wire_bytes_.store(l.wire_bytes, std::memory_order_relaxed);
    messages_.store(l.messages, std::memory_order_relaxed);
  }

 private:
  wire::CodecId codec_ = wire::CodecId::kRawF32;
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
};

}  // namespace fedclust::fl
