#include "fl/client_state.h"

#include <stdexcept>
#include <utility>

namespace fedclust::fl {

void SparseClientParams::reset(std::size_t n_clients,
                               std::vector<float> default_value) {
  n_clients_ = n_clients;
  default_ = std::move(default_value);
  touched_.clear();
}

const std::vector<float>& SparseClientParams::get(std::size_t i) const {
  if (i >= n_clients_) {
    throw std::out_of_range("SparseClientParams: client out of range");
  }
  const auto it = touched_.find(i);
  return it == touched_.end() ? default_ : it->second;
}

std::vector<float>& SparseClientParams::touch(std::size_t i) {
  if (i >= n_clients_) {
    throw std::out_of_range("SparseClientParams: client out of range");
  }
  const auto it = touched_.find(i);
  if (it != touched_.end()) return it->second;
  return touched_.emplace(i, default_).first->second;
}

void SparseClientParams::save(util::BinaryWriter& w) const {
  w.write_u64(n_clients_);
  w.write_u64(touched_.size());
  for (const auto& [id, vec] : touched_) {
    w.write_u64(id);
    w.write_f32_vec(vec);
  }
}

void SparseClientParams::load(util::BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  if (n != n_clients_) {
    throw std::runtime_error("SparseClientParams: population mismatch");
  }
  const std::uint64_t count = r.read_u64();
  if (count > n) {
    throw std::runtime_error("SparseClientParams: touched count exceeds "
                             "population");
  }
  touched_.clear();
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t id = r.read_u64();
    if (id >= n || (have_prev && id <= prev)) {
      throw std::runtime_error("SparseClientParams: corrupt sparse record");
    }
    std::vector<float> vec = r.read_f32_vec();
    if (vec.size() != default_.size()) {
      throw std::runtime_error("SparseClientParams: dimension mismatch");
    }
    touched_.emplace_hint(touched_.end(), static_cast<std::size_t>(id),
                          std::move(vec));
    prev = id;
    have_prev = true;
  }
}

}  // namespace fedclust::fl
