#include "fl/ditto.h"

namespace fedclust::fl {

Ditto::Ditto(Federation& fed, float lambda)
    : FlAlgorithm(fed), lambda_(lambda) {}

void Ditto::setup() {
  global_ = fed_.init_params();
  personal_.assign(fed_.n_clients(), fed_.init_params());
}

void Ditto::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  std::vector<std::vector<float>> updates;
  std::vector<double> weights;
  for (const std::size_t c : sampled) {
    fed_.comm().download_floats(p);

    // (1) Global-objective step: plain FedAvg local training.
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    updates.push_back(ws.flat_params());
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
    fed_.comm().upload_floats(p);

    // (2) Personal-objective step: prox-regularized training of v_i toward
    // the global model it just downloaded. Stays on-device: no extra comm.
    LocalTrainOptions prox_opts = fed_.cfg().local;
    prox_opts.prox_mu = lambda_;
    ws.set_flat_params(personal_[c]);
    fed_.client(c).train(ws, prox_opts, fed_.train_rng(c, 0xD177000 + r),
                         &global_);
    personal_[c] = ws.flat_params();
  }

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    entries.emplace_back(&updates[i], weights[i]);
  }
  global_ = weighted_average(entries);
}

double Ditto::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t i) -> const std::vector<float>& {
        return personal_[i];
      });
}

}  // namespace fedclust::fl
