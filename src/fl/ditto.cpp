#include "fl/ditto.h"

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

Ditto::Ditto(Federation& fed, float lambda)
    : FlAlgorithm(fed), lambda_(lambda) {}

void Ditto::setup() {
  global_ = fed_.init_params();
  personal_.reset(fed_.n_clients(), fed_.init_params());
}

void Ditto::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  LocalTrainOptions prox_opts = fed_.cfg().local;
  prox_opts.prox_mu = lambda_;

  // Serialize the global model once per round; every client trains from
  // (and regularizes toward) the wire-decoded copy it downloads.
  const std::vector<float> rx_global = fed_.through_wire(
      wire::MessageKind::kModelPull, global_, wire::kServerSender, r);

  // Materialize the cohort's personal slots sequentially so the parallel
  // fan-out only writes through stable references.
  for (const std::size_t c : sampled) personal_.touch(c);

  std::vector<std::vector<float>> updates(sampled.size());
  std::vector<double> weights(sampled.size());
  std::vector<char> delivered(sampled.size(), 1);
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(sampled, [&](std::size_t idx, std::size_t c,
                                      nn::Model& ws) {
    fed_.bill_download(p);
    const auto client = fed_.client(c);

    // (1) Global-objective step: plain FedAvg local training.
    ws.set_flat_params(rx_global);
    client->train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    updates[idx] = ws.flat_params();
    weights[idx] = static_cast<double>(client->n_train());
    delivered[idx] = fed_.deliver_update(c, r, updates[idx], p) ? 1 : 0;

    // (2) Personal-objective step: prox-regularized training of v_i toward
    // the global model it just downloaded. Stays on-device: no extra comm,
    // and it proceeds even when the global-step upload was lost.
    std::vector<float>& vi = personal_.touch(c);
    ws.set_flat_params(vi);
    client->train(ws, prox_opts, fed_.train_rng(c, 0xD177000 + r),
                  &rx_global);
    vi = ws.flat_params();
  });

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (delivered[i]) entries.emplace_back(&updates[i], weights[i]);
  }
  if (entries.empty()) {
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;  // global model carries forward; personal models kept training
  }
  global_ = weighted_average(entries);
}

double Ditto::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t i) -> const std::vector<float>& {
        return personal_.get(i);
      });
}

void Ditto::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
  personal_.save(w);
}

void Ditto::load_state(util::BinaryReader& r) {
  global_ = r.read_f32_vec();
  // Resume skips setup(): rebuild the θ0 default before loading slots.
  personal_.reset(fed_.n_clients(), fed_.init_params());
  personal_.load(r);
}

}  // namespace fedclust::fl
