#include "fl/parallel_round.h"

#include "fl/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedclust::fl {

void ParallelRoundRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t, nn::Model&)>& fn) {
  util::ThreadPool& pool = util::global_pool();
  if (pool.size() == 0 || n <= 1 || util::ThreadPool::in_parallel_region()) {
    // Exact sequential path: one shared workspace, ascending client index.
    nn::Model& ws = fed_.workspace();
    for (std::size_t i = 0; i < n; ++i) fn(i, ws);
    return;
  }
  pool.parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
    // One replica per chunk: leases are amortized over the chunk's clients.
    WorkspaceLease lease(fed_);
    for (std::size_t i = lo; i < hi; ++i) fn(i, lease.model());
  });
}

void ParallelRoundRunner::for_each_client(
    const std::vector<std::size_t>& clients,
    const std::function<void(std::size_t, std::size_t, nn::Model&)>& fn) {
  for_each_index(clients.size(), [&](std::size_t i, nn::Model& ws) {
    fn(i, clients[i], ws);
  });
}

std::vector<RoundTrainResult> ParallelRoundRunner::train_clients(
    const std::vector<std::size_t>& clients,
    const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of) {
  std::vector<RoundTrainResult> results(clients.size());
  for_each_client(clients, [&](std::size_t idx, std::size_t c,
                               nn::Model& ws) {
    OBS_SPAN_ARG("client.train", c);
    const RoundTrainJob job = job_of(idx, c);
    if (job.download_floats > 0) {
      // The model pull travels the wire: the client trains from what the
      // codec round-trips (bit-exact for raw_f32), and the tracker bills
      // the encoded bytes. download_floats beyond the model itself (e.g.
      // SCAFFOLD's control variate) are billed as a second envelope.
      ws.set_flat_params(
          fed_.pull_model(*job.start, job.round, job.download_floats));
    } else {
      ws.set_flat_params(*job.start);
    }
    const float loss = fed_.client(c).train(
        ws, job.opts, job.rng, job.prox_ref,
        job.grad_offset ? &*job.grad_offset : nullptr);
    results[idx].client = c;
    results[idx].params = ws.flat_params();
    results[idx].weight = static_cast<double>(fed_.client(c).n_train());
    results[idx].loss = loss;
    results[idx].delivered = fed_.deliver_update(
        c, job.round, results[idx].params, job.upload_floats,
        fed_.int8_aggregation_active() ? &results[idx].encoded : nullptr);
  });
  return results;
}

std::vector<std::pair<const std::vector<float>*, double>> to_entries(
    const std::vector<RoundTrainResult>& results) {
  std::vector<std::pair<const std::vector<float>*, double>> entries;
  entries.reserve(results.size());
  for (const auto& r : results) {
    if (r.delivered) entries.emplace_back(&r.params, r.weight);
  }
  return entries;
}

bool any_delivered(const std::vector<RoundTrainResult>& results) {
  for (const auto& r : results) {
    if (r.delivered) return true;
  }
  return false;
}

bool try_int8_aggregate(std::vector<float>& model,
                        const std::vector<const RoundTrainResult*>& group) {
  const std::size_t dim = model.size();
  const std::size_t want = wire::encoded_size(wire::CodecId::kQInt8, dim);
  double total = 0.0;
  std::vector<std::pair<const std::vector<std::uint8_t>*, double>> entries;
  entries.reserve(group.size());
  for (const RoundTrainResult* r : group) {
    if (r->encoded.size() != want || r->params.size() != dim) return false;
    entries.emplace_back(&r->encoded, r->weight);
    total += r->weight;
  }
  if (entries.empty() || total <= 0.0) return false;
  for (auto& [bytes, w] : entries) w /= total;
  model = wire::qint8_weighted_average(entries, dim);
  OBS_COUNTER_ADD("agg.int8_rounds", 1);
  return true;
}

bool aggregate_or_keep(std::vector<float>& model,
                       const std::vector<RoundTrainResult>& results) {
  if (!any_delivered(results)) {
    // Every sampled client's update was lost or quarantined: carry the
    // model forward unchanged rather than aggregating an empty set.
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return false;
  }
  std::vector<const RoundTrainResult*> delivered;
  delivered.reserve(results.size());
  for (const auto& r : results) {
    if (r.delivered) delivered.push_back(&r);
  }
  if (try_int8_aggregate(model, delivered)) return true;
  model = weighted_average(to_entries(results));
  return true;
}

}  // namespace fedclust::fl
