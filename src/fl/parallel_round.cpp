#include "fl/parallel_round.h"

#include "fl/codec.h"
#include "fl/stream_agg.h"
#include "fl/transport.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fedclust::fl {

void ParallelRoundRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t, nn::Model&)>& fn) {
  util::ThreadPool& pool = util::global_pool();
  if (pool.size() == 0 || n <= 1 || util::ThreadPool::in_parallel_region()) {
    // Exact sequential path: one shared workspace, ascending client index.
    nn::Model& ws = fed_.workspace();
    for (std::size_t i = 0; i < n; ++i) fn(i, ws);
    return;
  }
  pool.parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
    // One replica per chunk: leases are amortized over the chunk's clients.
    WorkspaceLease lease(fed_);
    for (std::size_t i = lo; i < hi; ++i) fn(i, lease.model());
  });
}

void ParallelRoundRunner::for_each_client(
    const std::vector<std::size_t>& clients,
    const std::function<void(std::size_t, std::size_t, nn::Model&)>& fn) {
  for_each_index(clients.size(), [&](std::size_t i, nn::Model& ws) {
    fn(i, clients[i], ws);
  });
}

std::vector<RoundTrainResult> ParallelRoundRunner::train_clients(
    const std::vector<std::size_t>& clients,
    const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of) {
  std::vector<RoundTrainResult> results(clients.size());
  train_clients_into(clients, job_of,
                     [&](std::size_t idx, RoundTrainResult&& res) {
                       results[idx] = std::move(res);
                     });
  return results;
}

void ParallelRoundRunner::train_clients_into(
    const std::vector<std::size_t>& clients,
    const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of,
    const std::function<void(std::size_t, RoundTrainResult&&)>& consume) {
  if (fed_.transport() != nullptr && fed_.transport()->remote()) {
    train_clients_remote_into(clients, job_of, consume);
    return;
  }
  for_each_client(clients, [&](std::size_t idx, std::size_t c,
                               nn::Model& ws) {
    const RoundTrainJob job = job_of(idx, c);
    // v = client, v2 = round: Perfetto filters train spans per client AND
    // per round. The job is fetched first so the round is in hand; job_of
    // is a pure field copy, so the span still covers all real work.
    OBS_SPAN_ARG2("client.train", c, job.round);
    const bool journal_on = obs::EventJournal::enabled();
    if (job.download_floats > 0) {
      // The model pull travels the wire: the client trains from what the
      // codec round-trips (bit-exact for raw_f32), and the tracker bills
      // the encoded bytes. download_floats beyond the model itself (e.g.
      // SCAFFOLD's control variate) are billed as a second envelope.
      ws.set_flat_params(
          fed_.pull_model(*job.start, job.round, job.download_floats));
      if (journal_on) {
        // Mirror CommTracker's billing exactly: one envelope for the model
        // itself, one more for any extra floats (control variates).
        const wire::CodecId codec = fed_.cfg().codec;
        const std::uint64_t base_n = job.start->size();
        std::uint64_t wire_bytes =
            wire::encoded_size(codec, base_n) + wire::kHeaderSize;
        if (job.download_floats > base_n) {
          wire_bytes += wire::encoded_size(codec, job.download_floats -
                                                      base_n) +
                        wire::kHeaderSize;
        }
        OBS_JOURNAL(job.round, c, kDownload, job.download_floats * 4,
                    wire_bytes);
      }
    } else {
      ws.set_flat_params(*job.start);
    }
    // Train wall time is journal-only telemetry; the clock is read only
    // when a journal is open (and recorded as 0 with the wall clock off,
    // keeping the determinism test's files bit-identical).
    std::int64_t train_t0 = 0;
    if (journal_on && obs::EventJournal::wall_clock()) {
      train_t0 = util::process_elapsed_micros();
    }
    // One store acquisition per client step; the shared_ptr keeps the
    // client alive across train + n_train even if the LRU evicts it.
    const auto client = fed_.client(c);
    const float loss =
        client->train(ws, job.opts, job.rng, job.prox_ref,
                      job.grad_offset ? &*job.grad_offset : nullptr);
    if (journal_on) {
      const std::uint64_t train_us =
          obs::EventJournal::wall_clock()
              ? static_cast<std::uint64_t>(util::process_elapsed_micros() -
                                           train_t0)
              : 0;
      OBS_JOURNAL(job.round, c, kTrain, train_us);
    }
    RoundTrainResult res;
    res.client = c;
    res.params = ws.flat_params();
    res.weight = static_cast<double>(client->n_train());
    res.loss = loss;
    res.delivered = fed_.deliver_update(
        c, job.round, res.params, job.upload_floats,
        fed_.int8_aggregation_active() ? &res.encoded : nullptr);
    consume(idx, std::move(res));
  });
}

void ParallelRoundRunner::train_clients_remote_into(
    const std::vector<std::size_t>& clients,
    const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of,
    const std::function<void(std::size_t, RoundTrainResult&&)>& consume) {
  Transport& net = *fed_.transport();
  const bool journal_on = obs::EventJournal::enabled();
  const wire::CodecId codec = fed_.cfg().codec;
  std::vector<TrainCall> calls(clients.size());
  std::vector<std::uint64_t> upload_floats(clients.size(), 0);

  // Phase 1 (server): resolve everything stochastic before any byte leaves
  // the process — pull_model applies the experiment codec and bills the
  // download exactly like the in-process path, and the RNG stream ships as
  // serialized state, so the worker replays the identical computation.
  for (std::size_t idx = 0; idx < clients.size(); ++idx) {
    const std::size_t c = clients[idx];
    const RoundTrainJob job = job_of(idx, c);
    TrainCall& call = calls[idx];
    call.client = c;
    call.round = job.round;
    call.opts = job.opts;
    call.rng = job.rng.state();
    if (job.download_floats > 0) {
      call.start = fed_.pull_model(*job.start, job.round, job.download_floats);
      if (journal_on) {
        // Same kDownload mirror as the in-process path (one envelope for
        // the model, one more for any extra floats riding along).
        const std::uint64_t base_n = job.start->size();
        std::uint64_t wire_bytes =
            wire::encoded_size(codec, base_n) + wire::kHeaderSize;
        if (job.download_floats > base_n) {
          wire_bytes += wire::encoded_size(codec, job.download_floats -
                                                      base_n) +
                        wire::kHeaderSize;
        }
        OBS_JOURNAL(job.round, c, kDownload, job.download_floats * 4,
                    wire_bytes);
      }
    } else {
      call.start = *job.start;
    }
    if (job.prox_ref != nullptr) call.prox_ref = *job.prox_ref;
    if (job.grad_offset) call.grad_offset = *job.grad_offset;
    upload_floats[idx] = job.upload_floats;
  }

  // Phase 2 (transport): workers compute; retries/reassignment happen
  // inside execute and surface only as outcome metadata.
  std::vector<TrainOutcome> outcomes;
  {
    OBS_SPAN_ARG2("net.execute", clients.size(),
                  clients.empty() ? 0 : calls.front().round);
    net.execute(calls, outcomes);
  }

  // Phase 3 (server): collected parameters enter the same quarantine
  // chokepoint as locally trained ones. A call the transport lost (worker
  // crashed, retry budget exhausted) is billed honestly as a comm failure:
  // no upload bytes (nothing reached the server), fault.lost_updates, and
  // exclusion from the aggregate — graceful degradation, not silent reuse
  // of stale parameters.
  for (std::size_t idx = 0; idx < clients.size(); ++idx) {
    const std::size_t c = clients[idx];
    const std::size_t round = calls[idx].round;
    TrainOutcome& out = outcomes[idx];
    RoundTrainResult res;
    res.client = c;
    res.weight = static_cast<double>(fed_.client(c)->n_train());
    if (out.attempts > 1) {
      OBS_COUNTER_ADD("fault.retries", out.attempts - 1);
      OBS_JOURNAL(round, c, kRetry, out.attempts - 1);
    }
    if (!out.ok) {
      OBS_COUNTER_ADD("fault.comm_failed", 1);
      OBS_COUNTER_ADD("fault.lost_updates", 1);
      OBS_JOURNAL(round, c, kCommFailed, out.attempts);
      res.delivered = false;
      consume(idx, std::move(res));
      continue;
    }
    if (journal_on) {
      OBS_JOURNAL(round, c, kTrain,
                  obs::EventJournal::wall_clock() ? out.train_us : 0);
    }
    res.params = std::move(out.params);
    res.loss = out.loss;
    res.delivered = fed_.deliver_update(
        c, round, res.params, upload_floats[idx],
        fed_.int8_aggregation_active() ? &res.encoded : nullptr);
    consume(idx, std::move(res));
  }
}

std::vector<std::pair<const std::vector<float>*, double>> to_entries(
    const std::vector<RoundTrainResult>& results) {
  std::vector<std::pair<const std::vector<float>*, double>> entries;
  entries.reserve(results.size());
  for (const auto& r : results) {
    if (r.delivered) entries.emplace_back(&r.params, r.weight);
  }
  return entries;
}

bool any_delivered(const std::vector<RoundTrainResult>& results) {
  for (const auto& r : results) {
    if (r.delivered) return true;
  }
  return false;
}

bool try_int8_aggregate(std::vector<float>& model,
                        const std::vector<const RoundTrainResult*>& group) {
  const std::size_t dim = model.size();
  const std::size_t want = wire::encoded_size(wire::CodecId::kQInt8, dim);
  double total = 0.0;
  std::vector<std::pair<const std::vector<std::uint8_t>*, double>> entries;
  entries.reserve(group.size());
  for (const RoundTrainResult* r : group) {
    if (r->encoded.size() != want || r->params.size() != dim) return false;
    entries.emplace_back(&r->encoded, r->weight);
    total += r->weight;
  }
  if (entries.empty() || total <= 0.0) return false;
  for (auto& [bytes, w] : entries) w /= total;
  model = wire::qint8_weighted_average(entries, dim);
  OBS_COUNTER_ADD("agg.int8_rounds", 1);
  return true;
}

bool aggregate_or_keep(std::vector<float>& model,
                       const std::vector<RoundTrainResult>& results) {
  if (results.empty() || !any_delivered(results)) {
    // Every sampled client's update was lost or quarantined: carry the
    // model forward unchanged rather than aggregating an empty set.
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return false;
  }
  // Same fixed reduction tree as the streaming consume path, fed in slot
  // order — collect-then-reduce and streaming aggregation are bit-identical
  // by construction. int8 mode is always armed: when no qint8 payloads were
  // captured the quantized path declines and the float tree applies.
  StreamingAggregator agg(results.size(), model.size(), /*int8_mode=*/true);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.delivered) {
      agg.submit(i, r.params.data(), r.params.size(), r.weight,
                 std::vector<std::uint8_t>(r.encoded));
    } else {
      agg.skip(i);
    }
  }
  if (agg.finish(model)) return true;
  OBS_COUNTER_ADD("fault.empty_rounds", 1);
  return false;
}

}  // namespace fedclust::fl
