#include "fl/scaffold.h"

namespace fedclust::fl {

Scaffold::Scaffold(Federation& fed) : FlAlgorithm(fed) {}

void Scaffold::setup() {
  global_ = fed_.init_params();
  c_global_.assign(fed_.model_size(), 0.0f);
  c_client_.assign(fed_.n_clients(),
                   std::vector<float>(fed_.model_size(), 0.0f));
}

void Scaffold::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();
  const auto& opts = fed_.cfg().local;

  std::vector<std::vector<float>> updates;
  std::vector<double> weights;
  std::vector<double> dc(p, 0.0);  // accumulated variate delta

  for (const std::size_t c : sampled) {
    // Download: model + global control variate.
    fed_.comm().download_floats(2 * p);

    // Per-step corrected gradient: g + c_global - c_i.
    std::vector<float> offset(p);
    for (std::size_t j = 0; j < p; ++j) {
      offset[j] = c_global_[j] - c_client_[c][j];
    }
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, opts, fed_.train_rng(c, r),
                         /*prox_ref=*/nullptr, &offset);
    const auto local = ws.flat_params();

    // Option-II variate refresh: c_i' = c_i - c + (x - y_i)/(K * lr).
    const double k_lr =
        static_cast<double>(fed_.client(c).local_steps(opts)) * opts.lr;
    for (std::size_t j = 0; j < p; ++j) {
      const float ci_new = static_cast<float>(
          c_client_[c][j] - c_global_[j] +
          (static_cast<double>(global_[j]) - local[j]) / k_lr);
      dc[j] += ci_new - c_client_[c][j];
      c_client_[c][j] = ci_new;
    }

    // Upload: model + variate delta.
    fed_.comm().upload_floats(2 * p);
    updates.push_back(local);
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
  }

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    entries.emplace_back(&updates[i], weights[i]);
  }
  global_ = weighted_average(entries);

  // c += |S|/N * mean(dc).
  const double scale = static_cast<double>(sampled.size()) /
                       static_cast<double>(fed_.n_clients()) /
                       static_cast<double>(sampled.size());
  for (std::size_t j = 0; j < p; ++j) {
    c_global_[j] += static_cast<float>(scale * dc[j]);
  }
}

double Scaffold::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

}  // namespace fedclust::fl
