#include "fl/scaffold.h"

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

Scaffold::Scaffold(Federation& fed) : FlAlgorithm(fed) {}

void Scaffold::setup() {
  global_ = fed_.init_params();
  c_global_.assign(fed_.model_size(), 0.0f);
  c_client_.reset(fed_.n_clients(),
                  std::vector<float>(fed_.model_size(), 0.0f));
}

void Scaffold::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();
  const auto& opts = fed_.cfg().local;

  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;
        job.opts = opts;
        job.rng = fed_.train_rng(c, r);
        // Per-step corrected gradient: g + c_global - c_i. Workers only
        // read the variate (get() never materializes); refreshes are
        // sequential, after the fan-out joins.
        const std::vector<float>& ci = c_client_.get(c);
        std::vector<float> offset(p);
        for (std::size_t j = 0; j < p; ++j) {
          offset[j] = c_global_[j] - ci[j];
        }
        job.grad_offset = std::move(offset);
        job.download_floats = 2 * p;  // model + global control variate
        job.upload_floats = 2 * p;    // model + variate delta
        job.round = r;
        return job;
      });

  if (!any_delivered(results)) {
    // Every update (and variate delta) was lost: model and variates carry
    // forward unchanged.
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;
  }

  // Option-II variate refresh, sequential in client-index order: c_i' =
  // c_i - c + (x - y_i)/(K * lr). A lost update loses the variate delta
  // too, and the server keeps its last c_i (it never saw the new one).
  std::vector<double> dc(p, 0.0);  // accumulated variate delta
  for (const auto& res : results) {
    if (!res.delivered) continue;
    const auto& local = res.params;
    auto& ci = c_client_.touch(res.client);
    const double k_lr =
        static_cast<double>(fed_.client(res.client)->local_steps(opts)) *
        opts.lr;
    for (std::size_t j = 0; j < p; ++j) {
      const float ci_new = static_cast<float>(
          ci[j] - c_global_[j] +
          (static_cast<double>(global_[j]) - local[j]) / k_lr);
      dc[j] += ci_new - ci[j];
      ci[j] = ci_new;
    }
  }

  global_ = weighted_average(to_entries(results));

  // c += |S|/N * mean(dc).
  const double scale = static_cast<double>(sampled.size()) /
                       static_cast<double>(fed_.n_clients()) /
                       static_cast<double>(sampled.size());
  for (std::size_t j = 0; j < p; ++j) {
    c_global_[j] += static_cast<float>(scale * dc[j]);
  }
}

double Scaffold::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void Scaffold::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
  w.write_f32_vec(c_global_);
  c_client_.save(w);
}

void Scaffold::load_state(util::BinaryReader& r) {
  global_ = r.read_f32_vec();
  c_global_ = r.read_f32_vec();
  // Resume skips setup(): rebuild the sparse default (zeros) before loading
  // the touched slots.
  c_client_.reset(fed_.n_clients(),
                  std::vector<float>(fed_.model_size(), 0.0f));
  c_client_.load(r);
}

}  // namespace fedclust::fl
