#include "fl/client_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace fedclust::fl {

MaterializedClientStore::MaterializedClientStore(
    std::vector<data::ClientData> data) {
  clients_.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    clients_.push_back(std::make_shared<const SimClient>(
        i, std::move(data[i].train), std::move(data[i].test)));
  }
}

std::shared_ptr<const SimClient> MaterializedClientStore::acquire(
    std::size_t id) {
  if (id >= clients_.size()) {
    throw std::out_of_range("ClientStore: client out of range");
  }
  return clients_[id];
}

VirtualClientStore::VirtualClientStore(
    std::shared_ptr<const data::PartitionPlan> plan, std::size_t capacity)
    : plan_(std::move(plan)), capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const SimClient> VirtualClientStore::acquire(std::size_t id) {
  if (id >= plan_->n_clients()) {
    throw std::out_of_range("ClientStore: client out of range");
  }
  std::shared_ptr<BuildSlot> slot;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = cache_.find(id);
    if (it != cache_.end()) {
      ++stats_.hits;
      OBS_COUNTER_ADD("store.cache_hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.client;
    }
    const auto bit = building_.find(id);
    if (bit != building_.end()) {
      // Another thread is already materializing this client; wait for its
      // result rather than regenerating the same datasets twice.
      slot = bit->second;
      ++stats_.hits;
      OBS_COUNTER_ADD("store.cache_hits", 1);
    } else {
      slot = std::make_shared<BuildSlot>();
      building_.emplace(id, slot);
      builder = true;
      ++stats_.misses;
      OBS_COUNTER_ADD("store.cache_misses", 1);
    }
  }

  if (!builder) {
    std::unique_lock<std::mutex> sl(slot->m);
    slot->cv.wait(sl, [&] { return slot->done; });
    return slot->client;
  }

  // Materialize outside every lock: regeneration is pure in (seed, id), so
  // concurrent builds of different clients never contend.
  data::ClientData cd = plan_->materialize(id);
  auto client = std::make_shared<const SimClient>(id, std::move(cd.train),
                                                  std::move(cd.test));
  {
    std::lock_guard<std::mutex> lk(mu_);
    lru_.push_front(id);
    cache_.emplace(id, Entry{client, lru_.begin()});
    while (cache_.size() > capacity_) {
      // size > capacity >= 1, so the back is never the entry just inserted.
      const std::size_t victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++stats_.evictions;
      OBS_COUNTER_ADD("store.cache_evictions", 1);
    }
    building_.erase(id);
  }
  {
    std::lock_guard<std::mutex> sl(slot->m);
    slot->done = true;
    slot->client = client;
  }
  slot->cv.notify_all();
  return client;
}

VirtualClientStore::CacheStats VirtualClientStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t VirtualClientStore::cached() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

}  // namespace fedclust::fl
