#include "fl/perfedavg.h"

#include <numeric>

#include "fl/parallel_round.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace fedclust::fl {

PerFedAvg::PerFedAvg(Federation& fed) : FlAlgorithm(fed) {}

void PerFedAvg::setup() { meta_ = fed_.init_params(); }

std::vector<float> PerFedAvg::maml_train(nn::Model& ws, std::size_t c,
                                         std::size_t r,
                                         const std::vector<float>& start) {
  const auto& opts = fed_.cfg().local;
  const float alpha = fed_.cfg().algo.perfedavg_alpha;
  const float beta = fed_.cfg().algo.perfedavg_beta;
  // Held for the whole adaptation: `ds` references into the client, which
  // a virtual store may otherwise evict mid-loop.
  const auto client = fed_.client(c);
  const auto& ds = client->train_data();
  util::Rng rng = fed_.train_rng(c, r);

  std::vector<float> w = start;
  std::vector<std::size_t> order(ds.size());
  std::iota(order.begin(), order.end(), 0);

  const auto batch_grad =
      [&](const std::vector<std::size_t>& batch) -> std::vector<float> {
    ws.zero_grad();
    const auto logits = ws.forward(ds.batch_images(batch), /*train=*/true);
    const auto lr = nn::softmax_cross_entropy(logits, ds.batch_labels(batch));
    ws.backward(lr.grad_logits);
    return ws.flat_grads();
  };

  for (std::size_t e = 0; e < opts.epochs; ++e) {
    rng.shuffle(order);
    // Consume the shuffled data in pairs of batches: the first drives the
    // inner adaptation step, the second the meta update.
    for (std::size_t start_idx = 0; start_idx + opts.batch_size <
                                    order.size();
         start_idx += 2 * opts.batch_size) {
      const std::size_t mid =
          std::min(order.size(), start_idx + opts.batch_size);
      const std::size_t end = std::min(order.size(), mid + opts.batch_size);
      const std::vector<std::size_t> b1(
          order.begin() + static_cast<std::ptrdiff_t>(start_idx),
          order.begin() + static_cast<std::ptrdiff_t>(mid));
      const std::vector<std::size_t> b2(
          order.begin() + static_cast<std::ptrdiff_t>(mid),
          order.begin() + static_cast<std::ptrdiff_t>(end));
      if (b2.empty()) break;

      // Inner step: w' = w - alpha * grad_b1(w).
      ws.set_flat_params(w);
      const auto g1 = batch_grad(b1);
      std::vector<float> adapted = w;
      tensor::axpy(-alpha, g1, adapted);
      // Meta step (first-order): w -= beta * grad_b2(w').
      ws.set_flat_params(adapted);
      const auto g2 = batch_grad(b2);
      tensor::axpy(-beta, g2, w);
    }
  }
  return w;
}

void PerFedAvg::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  // Serialize the meta-model once per round; clients adapt the
  // wire-decoded copy they download.
  const std::vector<float> rx_meta = fed_.through_wire(
      wire::MessageKind::kModelPull, meta_, wire::kServerSender, r);

  std::vector<std::vector<float>> updates(sampled.size());
  std::vector<double> weights(sampled.size());
  std::vector<char> delivered(sampled.size(), 1);
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(sampled, [&](std::size_t idx, std::size_t c,
                                      nn::Model& ws) {
    fed_.bill_download(p);
    updates[idx] = maml_train(ws, c, r, rx_meta);
    weights[idx] = static_cast<double>(fed_.client(c)->n_train());
    delivered[idx] = fed_.deliver_update(c, r, updates[idx], p) ? 1 : 0;
  });
  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (delivered[i]) entries.emplace_back(&updates[i], weights[i]);
  }
  if (entries.empty()) {
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;  // meta-model carries forward unchanged
  }
  meta_ = weighted_average(entries);
}

double PerFedAvg::evaluate_all() {
  // Personalize-then-evaluate: a few plain SGD epochs from the meta-model.
  LocalTrainOptions fine = fed_.cfg().local;
  fine.epochs = fed_.cfg().algo.perfedavg_eval_epochs;
  fine.lr = fed_.cfg().algo.perfedavg_alpha;
  const auto ids = fed_.eval_ids();
  std::vector<double> accs(ids.size());
  ParallelRoundRunner runner(fed_);
  runner.for_each_index(ids.size(), [&](std::size_t idx, nn::Model& ws) {
    const std::size_t i = ids[idx];
    ws.set_flat_params(meta_);
    const auto client = fed_.client(i);
    client->train(ws, fine, fed_.train_rng(i, 0xEdA1));
    accs[idx] = client->evaluate(ws);
  });
  double sum = 0.0;
  for (const double a : accs) sum += a;
  return sum / static_cast<double>(accs.size());
}

void PerFedAvg::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(meta_);
}

void PerFedAvg::load_state(util::BinaryReader& r) {
  meta_ = r.read_f32_vec();
}

}  // namespace fedclust::fl
