#include "fl/federation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <array>
#include <atomic>
#include <string_view>

#include "fl/parallel_round.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cpu.h"
#include "util/logging.h"

namespace fedclust::fl {

namespace {

// Per-codec span names ("wire.encode/qint8") built once through the
// tracer's interning table; the benign store race is fine because intern()
// is idempotent (equal strings return the same pointer).
const char* wire_span_name(const char* prefix, wire::CodecId codec,
                           std::array<std::atomic<const char*>,
                                      wire::kNumCodecs>& cache) {
  auto& slot = cache[static_cast<std::size_t>(codec)];
  const char* name = slot.load(std::memory_order_relaxed);
  if (name == nullptr) {
    name = obs::SpanTracer::instance().intern(std::string(prefix) +
                                              wire::codec_name(codec));
    slot.store(name, std::memory_order_relaxed);
  }
  return name;
}

const char* encode_span_name(wire::CodecId codec) {
  static std::array<std::atomic<const char*>, wire::kNumCodecs> cache{};
  return wire_span_name("wire.encode/", codec, cache);
}

const char* decode_span_name(wire::CodecId codec) {
  static std::array<std::atomic<const char*>, wire::kNumCodecs> cache{};
  return wire_span_name("wire.decode/", codec, cache);
}

// Default LRU capacity for virtual mode when --client-cache is 0: enough
// for a typical sampled cohort plus the eval subsample without rebuild
// churn, small enough that RSS stays flat at million-client populations.
constexpr std::size_t kDefaultClientCache = 256;

std::unique_ptr<ClientStore> store_from_cfg(const ExperimentConfig& cfg) {
  if (cfg.virtual_clients) {
    const std::size_t cap =
        cfg.client_cache > 0 ? cfg.client_cache : kDefaultClientCache;
    return std::make_unique<VirtualClientStore>(
        std::make_shared<const data::PartitionPlan>(cfg.data_spec, cfg.fed,
                                                    cfg.seed),
        cap);
  }
  return std::make_unique<MaterializedClientStore>(
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed));
}

// Rejects configurations that used to fail silently (a zero sample
// fraction sampled one client forever; eval_every == 0 was patched to 1 in
// the round loop; rounds == 0 produced an empty trace downstream consumers
// choke on). Runs before any member is built.
ExperimentConfig validated(ExperimentConfig cfg) {
  if (!(cfg.sample_fraction > 0.0) || cfg.sample_fraction > 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig.sample_fraction must be in (0, 1], got " +
        std::to_string(cfg.sample_fraction));
  }
  if (cfg.rounds == 0) {
    throw std::invalid_argument("ExperimentConfig.rounds must be >= 1");
  }
  if (cfg.eval_every == 0) {
    throw std::invalid_argument("ExperimentConfig.eval_every must be >= 1");
  }
  if (!(cfg.dropout_prob >= 0.0) || cfg.dropout_prob >= 1.0) {
    throw std::invalid_argument(
        "ExperimentConfig.dropout_prob must be in [0, 1), got " +
        std::to_string(cfg.dropout_prob));
  }
  cfg.fault.validate();
  return cfg;
}

// The legacy dropout_prob knob maps onto the fault engine's pre-round
// class: same "no impact" semantics (no compute, no comm), now sharing the
// engine's deterministic per-(client, round) schedule.
FaultPlan merged_plan(const ExperimentConfig& cfg) {
  FaultPlan plan = cfg.fault;
  if (cfg.dropout_prob > 0.0 && plan.pre_round_dropout == 0.0) {
    plan.pre_round_dropout = cfg.dropout_prob;
  }
  return plan;
}

}  // namespace

Federation::Federation(ExperimentConfig cfg)
    : Federation(std::move(cfg), std::unique_ptr<ClientStore>()) {}

Federation::Federation(ExperimentConfig cfg,
                       std::vector<data::ClientData> data)
    : Federation(std::move(cfg), std::make_unique<MaterializedClientStore>(
                                     std::move(data))) {}

// store == nullptr means "build from cfg after validation" — the public
// cfg-only constructor cannot validate before delegating.
Federation::Federation(ExperimentConfig cfg, std::unique_ptr<ClientStore> store)
    : cfg_(validated(std::move(cfg))),
      faults_(merged_plan(cfg_), cfg_.seed),
      validator_(faults_.plan().max_update_norm),
      store_(store != nullptr ? std::move(store) : store_from_cfg(cfg_)),
      workspace_(nn::build_model(cfg_.model, cfg_.seed)) {
  if (store_->size() == 0) {
    throw std::invalid_argument("Federation: no clients");
  }
  init_params_ = workspace_.flat_params();
  comm_.set_codec(cfg_.codec);
  if (obs::MetricsRegistry::enabled()) {
    // Record the resolved kernel dispatch in the metrics summary so every
    // run documents which ISA produced its numbers.
    obs::MetricsRegistry::instance()
        .gauge(std::string("kernels.isa.") +
               util::isa_name(util::active_isa()))
        .set(1);
    obs::MetricsRegistry::instance()
        .gauge("kernels.fast_math")
        .set(util::fast_math_kernels() ? 1 : 0);
  }
}

nn::Model Federation::make_model(std::uint64_t salt) const {
  return nn::build_model(cfg_.model, cfg_.seed ^ (salt * 0x9e3779b9ULL + 1));
}

nn::Model* Federation::acquire_workspace() {
  {
    const std::lock_guard<std::mutex> lock(ws_mu_);
    if (!ws_free_.empty()) {
      nn::Model* m = ws_free_.back();
      ws_free_.pop_back();
      return m;
    }
  }
  // Build outside the lock so concurrent first acquisitions don't serialize
  // on model construction. Initial weights are irrelevant: every user loads
  // parameters before touching the replica.
  auto replica = std::make_unique<nn::Model>(
      nn::build_model(cfg_.model, cfg_.seed));
  nn::Model* m = replica.get();
  const std::lock_guard<std::mutex> lock(ws_mu_);
  ws_owned_.push_back(std::move(replica));
  return m;
}

void Federation::release_workspace(nn::Model* m) {
  const std::lock_guard<std::mutex> lock(ws_mu_);
  ws_free_.push_back(m);
}

std::vector<std::size_t> Federation::sample_round(std::size_t round) const {
  const std::size_t n = store_->size();
  const auto want = static_cast<std::size_t>(
      cfg_.sample_fraction * static_cast<double>(n));
  std::size_t k = std::clamp<std::size_t>(want, 1, n);
  if (faults_.active() && faults_.plan().over_select_fraction > 0.0) {
    // Over-selection: hedge expected dropouts by inviting extra clients, so
    // the surviving cohort stays near the configured size.
    const auto hedged = static_cast<std::size_t>(std::ceil(
        static_cast<double>(k) *
        (1.0 + faults_.plan().over_select_fraction)));
    const std::size_t extra = std::clamp<std::size_t>(hedged, k, n) - k;
    OBS_COUNTER_ADD("fault.over_selected", extra);
    k += extra;
  }
  util::Rng rng = util::Rng(cfg_.seed).split(0xA11CE000ULL + round);
  auto ids = rng.sample_without_replacement(n, k);
  if (faults_.active()) {
    // Pre-round dropouts "have no impact" (paper §4.2): no compute, no
    // comm. Decisions come from the engine's per-(client, round) streams,
    // not from the sampling stream, so enabling other fault classes cannot
    // reshuffle the cohort.
    std::vector<std::size_t> survivors;
    for (const std::size_t id : ids) {
      if (faults_.decide(id, round).drop_pre_round) {
        OBS_COUNTER_ADD("fault.injected.pre_round_dropout", 1);
        OBS_JOURNAL(round, id, kDropped);
      } else {
        survivors.push_back(id);
      }
    }
    // A round needs at least one participant to aggregate anything.
    if (survivors.empty()) survivors.push_back(ids.front());
    ids = std::move(survivors);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::size_t id : ids) OBS_JOURNAL(round, id, kSampled);
  return ids;
}

std::vector<float> Federation::wire_round_trip(
    wire::MessageKind kind, const float* data, std::size_t n,
    std::uint64_t sender, std::size_t round, std::uint64_t* encoded_bytes,
    std::vector<std::uint8_t>* payload_out) const {
  std::vector<std::uint8_t> bytes;
  {
    // v = payload floats, v2 = sender (client id, or kServerSender for
    // model pulls) so Perfetto can filter codec work per client.
    obs::SpanScope span(encode_span_name(cfg_.codec), n, sender);
    bytes = wire::encode(kind, cfg_.codec, sender, round, data, n);
  }
  if (encoded_bytes != nullptr) {
    *encoded_bytes = bytes.size() - wire::kHeaderSize;
  }
  wire::Envelope env;
  {
    obs::SpanScope span(decode_span_name(cfg_.codec), n, sender);
    const wire::DecodeStatus status =
        wire::try_decode(bytes.data(), bytes.size(), env);
    if (status != wire::DecodeStatus::kOk) {
      throw std::runtime_error(std::string("Federation: wire round trip of ") +
                               wire::message_kind_name(kind) + " failed: " +
                               wire::decode_status_name(status));
    }
  }
  if (payload_out != nullptr) {
    payload_out->assign(bytes.begin() + wire::kHeaderSize, bytes.end());
  }
  return std::move(env.payload);
}

std::vector<float> Federation::through_wire(wire::MessageKind kind,
                                            const float* data, std::size_t n,
                                            std::uint64_t sender,
                                            std::size_t round) const {
  return wire_round_trip(kind, data, n, sender, round, nullptr);
}

std::vector<float> Federation::through_wire(wire::MessageKind kind,
                                            const std::vector<float>& payload,
                                            std::uint64_t sender,
                                            std::size_t round) const {
  return wire_round_trip(kind, payload.data(), payload.size(), sender, round,
                         nullptr);
}

std::vector<float> Federation::pull_model(const std::vector<float>& payload,
                                          std::size_t round,
                                          std::uint64_t counted_floats) {
  std::uint64_t encoded = 0;
  std::vector<float> rx =
      wire_round_trip(wire::MessageKind::kModelPull, payload.data(),
                      payload.size(), wire::kServerSender, round, &encoded);
  comm_.download_envelope(payload.size(), encoded);
  if (counted_floats > payload.size()) {
    const std::uint64_t extra = counted_floats - payload.size();
    comm_.download_envelope(extra, wire::encoded_size(cfg_.codec, extra));
  }
  return rx;
}

std::vector<float> Federation::upload_payload(wire::MessageKind kind,
                                              const float* data, std::size_t n,
                                              std::size_t client,
                                              std::size_t round) {
  std::uint64_t encoded = 0;
  std::vector<float> rx = wire_round_trip(kind, data, n, client, round,
                                          &encoded);
  comm_.upload_envelope(n, encoded);
  return rx;
}

std::vector<float> Federation::upload_payload(wire::MessageKind kind,
                                              const std::vector<float>& payload,
                                              std::size_t client,
                                              std::size_t round) {
  return upload_payload(kind, payload.data(), payload.size(), client, round);
}

void Federation::bill_download(std::uint64_t n_floats,
                               std::uint64_t messages) {
  comm_.download_envelope(n_floats, wire::encoded_size(cfg_.codec, n_floats),
                          messages);
}

void Federation::bill_upload(std::uint64_t n_floats, std::uint64_t messages) {
  comm_.upload_envelope(n_floats, wire::encoded_size(cfg_.codec, n_floats),
                        messages);
}

bool Federation::deliver_update(std::size_t client, std::size_t round,
                                std::vector<float>& params,
                                std::uint64_t upload_floats,
                                std::vector<std::uint8_t>* encoded_out) {
  OBS_SPAN_ARG2("fault.deliver", client, round);
  if (encoded_out != nullptr) encoded_out->clear();
  const wire::CodecId codec = cfg_.codec;
  // Validator reasons map onto the journal's quarantine codes.
  const auto quarantine_code = [](const char* why) -> std::uint64_t {
    return std::string_view(why) == "norm_bound" ? 1 : 0;
  };
  const char* reject = nullptr;
  if (!faults_.active()) {
    // Fault-free fast path: serialize through the wire once (raw_f32
    // round-trips bit-exactly, so results match the pre-wire behavior bit
    // for bit), bill the encoded bytes, then the always-on server screen.
    if (upload_floats > 0) {
      comm_.upload_envelope(upload_floats,
                            wire::encoded_size(codec, upload_floats));
      OBS_JOURNAL(round, client, kUpload, upload_floats * 4,
                  wire::encoded_size(codec, upload_floats) +
                      wire::kHeaderSize);
    }
    params = wire_round_trip(wire::MessageKind::kUpdatePush, params.data(),
                             params.size(), client, round, nullptr,
                             encoded_out);
    reject = validator_.check(params);
    if (reject == nullptr) {
      OBS_JOURNAL(round, client, kDelivered);
      return true;
    }
    if (encoded_out != nullptr) encoded_out->clear();
    OBS_COUNTER_ADD("fault.rejected_updates", 1);
    OBS_JOURNAL(round, client, kQuarantine, quarantine_code(reject));
    FC_LOG_WARN << "client " << client << " round " << round
                << ": update quarantined (" << reject << ")";
    return false;
  }

  const FaultPlan& plan = faults_.plan();
  const FaultDecision d = faults_.decide(client, round);
  if (d.crash_post_train) {
    // Compute spent, update lost before any byte moved.
    OBS_COUNTER_ADD("fault.injected.post_train_crash", 1);
    OBS_COUNTER_ADD("fault.lost_updates", 1);
    OBS_JOURNAL(round, client, kCrash);
    return false;
  }

  // Simulated round time in normalized units: a fault-free client costs
  // 1.0; stragglers stretch it; every retransmission adds exponential
  // backoff. Wall-clock never enters, so the schedule is thread-invariant.
  double sim_time = d.straggler ? d.delay_factor : 1.0;
  if (d.straggler) {
    OBS_COUNTER_ADD("fault.injected.straggler", 1);
    OBS_JOURNAL(round, client, kStraggler,
                static_cast<std::uint64_t>(std::llround(d.delay_factor *
                                                        1000.0)));
  }

  // Bounded retry-with-backoff: every attempt (including failed ones) puts
  // an encoded envelope on the wire.
  const bool comm_ok = d.transient_failures <= plan.max_retries;
  const std::size_t transmissions =
      comm_ok ? d.transient_failures + 1 : plan.max_retries + 1;
  if (upload_floats > 0) {
    comm_.upload_envelope(upload_floats,
                          wire::encoded_size(codec, upload_floats),
                          transmissions);
    // Journaled bytes are totals across every transmission attempt —
    // exactly what CommTracker bills.
    OBS_JOURNAL(round, client, kUpload, upload_floats * 4 * transmissions,
                (wire::encoded_size(codec, upload_floats) +
                 wire::kHeaderSize) *
                    transmissions);
  }
  if (transmissions > 1) {
    OBS_COUNTER_ADD("fault.injected.comm_transient", d.transient_failures);
    OBS_COUNTER_ADD("fault.retries", transmissions - 1);
    OBS_JOURNAL(round, client, kRetry, transmissions - 1);
    // Exponential backoff between retransmissions; the schedule knobs come
    // from the fault plan and are shared with the socket transport's
    // net::BackoffPolicy, so simulated and real retries follow one
    // definition. Defaults (0.25, x2) reproduce the historical schedule
    // bit for bit: 0.25, 0.5, 1.0, ...
    double backoff = plan.backoff_base;
    for (std::size_t i = 1; i < transmissions; ++i) {
      sim_time += backoff;
      backoff *= plan.backoff_mult;
    }
  }
  OBS_HISTOGRAM_OBSERVE("fault.sim_round_time", sim_time);
  if (!comm_ok) {
    OBS_COUNTER_ADD("fault.comm_failed", 1);
    OBS_COUNTER_ADD("fault.lost_updates", 1);
    OBS_JOURNAL(round, client, kCommFailed, transmissions);
    return false;
  }

  // The server closes the round at the deadline; a late update was still
  // transmitted (comm spent) but is discarded.
  if (plan.round_deadline > 0.0 && sim_time > plan.round_deadline) {
    OBS_COUNTER_ADD("fault.deadline_missed", 1);
    OBS_COUNTER_ADD("fault.lost_updates", 1);
    OBS_JOURNAL(round, client, kDeadlineMissed,
                static_cast<std::uint64_t>(std::llround(sim_time * 1000.0)));
    return false;
  }

  // Value corruption (NaN/Inf/explode) models a faulty client: it hits the
  // floats before serialization, so the damaged update travels under a
  // valid checksum and must be caught by the validator, not the CRC.
  if (d.corrupt != CorruptionKind::kNone &&
      d.corrupt != CorruptionKind::kBitFlip) {
    faults_.corrupt_update(params, client, round, d.corrupt);
    OBS_COUNTER_ADD("fault.injected.corrupted_update", 1);
  }

  std::vector<std::uint8_t> bytes;
  {
    obs::SpanScope span(encode_span_name(codec), params.size(), client);
    bytes = wire::encode(wire::MessageKind::kUpdatePush, codec, client, round,
                         params.data(), params.size());
  }

  // Bit-flip corruption models a transport fault: it flips real wire bytes
  // after the checksum was computed.
  if (d.corrupt == CorruptionKind::kBitFlip) {
    faults_.corrupt_wire(bytes, client, round);
    OBS_COUNTER_ADD("fault.injected.corrupted_update", 1);
  }

  wire::Envelope env;
  wire::DecodeStatus status;
  {
    obs::SpanScope span(decode_span_name(codec), params.size(), client);
    status = wire::try_decode(bytes.data(), bytes.size(), env);
  }
  if (status != wire::DecodeStatus::kOk) {
    // CRC verification is the first stage of quarantine: a damaged envelope
    // is rejected before any payload byte reaches a codec or a reduction.
    OBS_COUNTER_ADD("fault.checksum_rejects", 1);
    OBS_COUNTER_ADD("fault.lost_updates", 1);
    OBS_JOURNAL(round, client, kChecksumReject);
    FC_LOG_DEBUG << "client " << client << " round " << round
                 << ": envelope rejected (" << wire::decode_status_name(status)
                 << ")";
    return false;
  }
  params = std::move(env.payload);

  // Quarantine before the update can touch any FP reduction.
  reject = validator_.check(params);
  if (reject != nullptr) {
    OBS_COUNTER_ADD("fault.rejected_updates", 1);
    OBS_JOURNAL(round, client, kQuarantine, quarantine_code(reject));
    FC_LOG_DEBUG << "client " << client << " round " << round
                 << ": update quarantined (" << reject << ")";
    return false;
  }
  if (encoded_out != nullptr) {
    // Bytes as the server received them (post bit-flip injection, CRC- and
    // validator-clean): exactly what int8 aggregation may consume.
    encoded_out->assign(bytes.begin() + wire::kHeaderSize, bytes.end());
  }
  OBS_JOURNAL(round, client, kDelivered);
  return true;
}

bool Federation::int8_aggregation_active() const {
  return cfg_.codec == wire::CodecId::kQInt8 && util::fast_math_kernels();
}

util::Rng Federation::train_rng(std::size_t client, std::size_t round) const {
  return util::Rng(cfg_.seed).split(0xC11E47000000ULL + client * 100003 +
                                    round);
}

std::vector<std::size_t> Federation::eval_ids() const {
  const std::size_t n = store_->size();
  if (cfg_.eval_clients == 0 || cfg_.eval_clients >= n) {
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    return ids;
  }
  // Fixed for the whole run, drawn from its own stream so enabling the
  // subsample cannot reshuffle sampling/training/fault draws.
  auto ids = util::Rng(cfg_.seed)
                 .split(0xE7A1C1E275ULL)
                 .sample_without_replacement(n, cfg_.eval_clients);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double Federation::average_local_accuracy(
    const std::function<const std::vector<float>&(std::size_t)>& params_of) {
  // Per-client accuracies are computed (possibly in parallel) into indexed
  // slots, then reduced on one thread in ascending client order — the same
  // floating-point summation the sequential loop performed.
  const auto accs = local_accuracy_distribution(params_of);
  double sum = 0.0;
  for (const double a : accs) sum += a;
  return sum / static_cast<double>(accs.size());
}

std::vector<double> Federation::local_accuracy_distribution(
    const std::function<const std::vector<float>&(std::size_t)>& params_of) {
  const auto ids = eval_ids();
  std::vector<double> accs(ids.size());
  ParallelRoundRunner(*this).for_each_index(
      ids.size(), [&](std::size_t idx, nn::Model& ws) {
        const std::size_t i = ids[idx];
        OBS_SPAN_ARG("client.eval", i);
        ws.set_flat_params(params_of(i));
        accs[idx] = client(i)->evaluate(ws);
        // Eval sweeps don't carry a round index; the run loop sets the
        // round context around evaluate_all, so out-of-band sweeps journal
        // nothing. Micro-units keep the row integer-only.
        if (obs::EventJournal::enabled()) {
          obs::EventJournal::instance().record_in_context(
              i, obs::JournalEvent::kEval,
              static_cast<std::uint64_t>(std::llround(accs[idx] * 1e6)));
        }
      });
  return accs;
}

std::vector<float> weighted_average(
    const std::vector<std::pair<const std::vector<float>*, double>>&
        entries) {
  if (entries.empty()) {
    throw std::invalid_argument("weighted_average: no entries");
  }
  const std::size_t dim = entries.front().first->size();
  double total_weight = 0.0;
  for (const auto& [vec, w] : entries) {
    if (vec->size() != dim) {
      throw std::invalid_argument("weighted_average: length mismatch");
    }
    if (w < 0.0) {
      throw std::invalid_argument("weighted_average: negative weight");
    }
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("weighted_average: zero total weight");
  }
  // Accumulate in double: averaging ~10 vectors of ~10^5 floats.
  std::vector<double> acc(dim, 0.0);
  for (const auto& [vec, w] : entries) {
    const double f = w / total_weight;
    const auto& v = *vec;
    for (std::size_t i = 0; i < dim; ++i) acc[i] += f * v[i];
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace fedclust::fl
