#include "fl/federation.h"

#include <algorithm>
#include <stdexcept>

#include "fl/parallel_round.h"
#include "obs/trace.h"

namespace fedclust::fl {

namespace {

std::vector<SimClient> build_clients(std::vector<data::ClientData> data) {
  std::vector<SimClient> clients;
  clients.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    clients.emplace_back(i, std::move(data[i].train),
                         std::move(data[i].test));
  }
  return clients;
}

}  // namespace

Federation::Federation(ExperimentConfig cfg)
    : Federation(cfg, data::make_federated_data(cfg.data_spec, cfg.fed,
                                                cfg.seed)) {}

Federation::Federation(ExperimentConfig cfg,
                       std::vector<data::ClientData> data)
    : cfg_(std::move(cfg)),
      clients_(build_clients(std::move(data))),
      workspace_(nn::build_model(cfg_.model, cfg_.seed)) {
  if (clients_.empty()) {
    throw std::invalid_argument("Federation: no clients");
  }
  init_params_ = workspace_.flat_params();
}

nn::Model Federation::make_model(std::uint64_t salt) const {
  return nn::build_model(cfg_.model, cfg_.seed ^ (salt * 0x9e3779b9ULL + 1));
}

nn::Model* Federation::acquire_workspace() {
  {
    const std::lock_guard<std::mutex> lock(ws_mu_);
    if (!ws_free_.empty()) {
      nn::Model* m = ws_free_.back();
      ws_free_.pop_back();
      return m;
    }
  }
  // Build outside the lock so concurrent first acquisitions don't serialize
  // on model construction. Initial weights are irrelevant: every user loads
  // parameters before touching the replica.
  auto replica = std::make_unique<nn::Model>(
      nn::build_model(cfg_.model, cfg_.seed));
  nn::Model* m = replica.get();
  const std::lock_guard<std::mutex> lock(ws_mu_);
  ws_owned_.push_back(std::move(replica));
  return m;
}

void Federation::release_workspace(nn::Model* m) {
  const std::lock_guard<std::mutex> lock(ws_mu_);
  ws_free_.push_back(m);
}

std::vector<std::size_t> Federation::sample_round(std::size_t round) const {
  const std::size_t n = clients_.size();
  const auto want = static_cast<std::size_t>(
      cfg_.sample_fraction * static_cast<double>(n));
  const std::size_t k = std::clamp<std::size_t>(want, 1, n);
  util::Rng rng = util::Rng(cfg_.seed).split(0xA11CE000ULL + round);
  auto ids = rng.sample_without_replacement(n, k);
  if (cfg_.dropout_prob > 0.0) {
    std::vector<std::size_t> survivors;
    for (const std::size_t id : ids) {
      if (rng.uniform() >= cfg_.dropout_prob) survivors.push_back(id);
    }
    // Clients who quit "have no impact" (paper §4.2), but a round needs at
    // least one participant to aggregate anything.
    if (survivors.empty()) survivors.push_back(ids.front());
    ids = std::move(survivors);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

util::Rng Federation::train_rng(std::size_t client, std::size_t round) const {
  return util::Rng(cfg_.seed).split(0xC11E47000000ULL + client * 100003 +
                                    round);
}

double Federation::average_local_accuracy(
    const std::function<const std::vector<float>&(std::size_t)>& params_of) {
  // Per-client accuracies are computed (possibly in parallel) into indexed
  // slots, then reduced on one thread in ascending client order — the same
  // floating-point summation the sequential loop performed.
  const auto accs = local_accuracy_distribution(params_of);
  double sum = 0.0;
  for (const double a : accs) sum += a;
  return sum / static_cast<double>(clients_.size());
}

std::vector<double> Federation::local_accuracy_distribution(
    const std::function<const std::vector<float>&(std::size_t)>& params_of) {
  std::vector<double> accs(clients_.size());
  ParallelRoundRunner(*this).for_each_index(
      clients_.size(), [&](std::size_t i, nn::Model& ws) {
        OBS_SPAN_ARG("client.eval", i);
        ws.set_flat_params(params_of(i));
        accs[i] = clients_[i].evaluate(ws);
      });
  return accs;
}

std::vector<float> weighted_average(
    const std::vector<std::pair<const std::vector<float>*, double>>&
        entries) {
  if (entries.empty()) {
    throw std::invalid_argument("weighted_average: no entries");
  }
  const std::size_t dim = entries.front().first->size();
  double total_weight = 0.0;
  for (const auto& [vec, w] : entries) {
    if (vec->size() != dim) {
      throw std::invalid_argument("weighted_average: length mismatch");
    }
    if (w < 0.0) {
      throw std::invalid_argument("weighted_average: negative weight");
    }
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("weighted_average: zero total weight");
  }
  // Accumulate in double: averaging ~10 vectors of ~10^5 floats.
  std::vector<double> acc(dim, 0.0);
  for (const auto& [vec, w] : entries) {
    const double f = w / total_weight;
    const auto& v = *vec;
    for (std::size_t i = 0; i < dim; ++i) acc[i] += f * v[i];
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace fedclust::fl
