#include "fl/local_only.h"

namespace fedclust::fl {

LocalOnly::LocalOnly(Federation& fed) : FlAlgorithm(fed) {}

void LocalOnly::setup() {
  // All clients start from θ0, like every other method.
  params_.assign(fed_.n_clients(), fed_.init_params());
}

void LocalOnly::round(std::size_t r) {
  // Sampled clients run their local epochs on their own weights; the
  // sampling keeps the total training effort per client comparable to the
  // federated baselines. No bytes move.
  nn::Model& ws = fed_.workspace();
  for (const std::size_t c : fed_.sample_round(r)) {
    ws.set_flat_params(params_[c]);
    fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    params_[c] = ws.flat_params();
  }
}

double LocalOnly::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t i) -> const std::vector<float>& {
        return params_[i];
      });
}

}  // namespace fedclust::fl
