#include "fl/local_only.h"

#include "fl/parallel_round.h"

namespace fedclust::fl {

LocalOnly::LocalOnly(Federation& fed) : FlAlgorithm(fed) {}

void LocalOnly::setup() {
  // All clients start from θ0, like every other method.
  params_.assign(fed_.n_clients(), fed_.init_params());
}

void LocalOnly::round(std::size_t r) {
  // Sampled clients run their local epochs on their own weights; the
  // sampling keeps the total training effort per client comparable to the
  // federated baselines. No bytes move, and each task touches only its own
  // client's params_ slot.
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(
      fed_.sample_round(r),
      [&](std::size_t, std::size_t c, nn::Model& ws) {
        ws.set_flat_params(params_[c]);
        fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
        params_[c] = ws.flat_params();
      });
}

double LocalOnly::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t i) -> const std::vector<float>& {
        return params_[i];
      });
}

void LocalOnly::save_state(util::BinaryWriter& w) const {
  write_nested_f32(w, params_);
}

void LocalOnly::load_state(util::BinaryReader& r) {
  params_ = read_nested_f32(r);
}

}  // namespace fedclust::fl
