#include "fl/local_only.h"

#include "fl/parallel_round.h"

namespace fedclust::fl {

LocalOnly::LocalOnly(Federation& fed) : FlAlgorithm(fed) {}

void LocalOnly::setup() {
  // All clients start from θ0, like every other method — the sparse
  // default, so only clients that actually train ever own a slot.
  params_.reset(fed_.n_clients(), fed_.init_params());
}

void LocalOnly::round(std::size_t r) {
  // Sampled clients run their local epochs on their own weights; the
  // sampling keeps the total training effort per client comparable to the
  // federated baselines. No bytes move, and each task touches only its own
  // client's params_ slot — materialized sequentially here so the parallel
  // fan-out never mutates the map.
  const auto sampled = fed_.sample_round(r);
  for (const std::size_t c : sampled) params_.touch(c);
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(
      sampled, [&](std::size_t, std::size_t c, nn::Model& ws) {
        std::vector<float>& slot = params_.touch(c);
        ws.set_flat_params(slot);
        fed_.client(c)->train(ws, fed_.cfg().local, fed_.train_rng(c, r));
        slot = ws.flat_params();
      });
}

double LocalOnly::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t i) -> const std::vector<float>& {
        return params_.get(i);
      });
}

void LocalOnly::save_state(util::BinaryWriter& w) const { params_.save(w); }

void LocalOnly::load_state(util::BinaryReader& r) {
  // Resume skips setup(): rebuild the θ0 default before loading slots.
  params_.reset(fed_.n_clients(), fed_.init_params());
  params_.load(r);
}

}  // namespace fedclust::fl
