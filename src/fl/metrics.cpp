#include "fl/metrics.h"

#include "util/serialization.h"
#include "util/table.h"

namespace fedclust::fl {

namespace {

double mb(std::uint64_t bytes) { return static_cast<double>(bytes) * 8.0 / 1e6; }

}  // namespace

double Trace::final_accuracy() const {
  return records.empty() ? 0.0 : records.back().avg_local_test_acc;
}

int Trace::rounds_to_accuracy(double target) const {
  for (const auto& r : records) {
    if (r.avg_local_test_acc >= target) {
      return static_cast<int>(r.round) + 1;
    }
  }
  return -1;
}

double Trace::mb_to_accuracy(double target) const {
  for (const auto& r : records) {
    if (r.avg_local_test_acc >= target) {
      return mb(r.bytes_up + r.bytes_down);
    }
  }
  return -1.0;
}

double Trace::total_mb() const {
  return records.empty()
             ? 0.0
             : mb(records.back().bytes_up + records.back().bytes_down);
}

std::size_t Trace::final_clusters() const {
  return records.empty() ? 1 : records.back().n_clusters;
}

void Trace::save_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"method", "dataset", "round", "acc", "mb_up",
                             "mb_down", "clusters"});
  for (const auto& r : records) {
    csv.add_row({method, dataset, std::to_string(r.round),
                 util::fmt_float(r.avg_local_test_acc, 6),
                 util::fmt_float(mb(r.bytes_up), 4),
                 util::fmt_float(mb(r.bytes_down), 4),
                 std::to_string(r.n_clusters)});
  }
}

}  // namespace fedclust::fl
