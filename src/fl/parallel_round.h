#pragma once

// Client-parallel round execution.
//
// Clients inside a communication round are independent by construction:
// every client trains from an explicitly loaded parameter vector with its
// own pre-split (client, round) RNG stream, and communication accounting is
// a commutative sum. ParallelRoundRunner exploits that structure: it fans
// the sampled clients out over util::global_pool(), giving each worker
// chunk a leased model replica from the federation's workspace pool, and
// hands results to the caller keyed by client-index slot — either collected
// (train_clients) or consumed as deliveries resolve (train_clients_into).
// Aggregation folds updates over StreamingAggregator's fixed reduction
// tree, whose FP association depends only on the cohort size — so traces
// are bit-identical at any worker count (FEDCLUST_THREADS=1 runs the
// sequential code path through the shared workspace).
//
// Nested kernels are safe: GEMM's inner parallel_for detects it is running
// inside a worker chunk and degrades to inline execution (see
// util/thread_pool.h's nested-parallelism policy).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "fl/federation.h"

namespace fedclust::fl {

// Everything the common train-upload-collect client step needs, produced by
// the algorithm per sampled client before fan-out. `start` must outlive the
// call; prox_ref likewise (point it at round-constant storage such as the
// global model). grad_offset is owned by the job because SCAFFOLD/FedDyn
// derive it per client.
struct RoundTrainJob {
  const std::vector<float>* start = nullptr;  // params loaded before training
  LocalTrainOptions opts;
  util::Rng rng{0};
  const std::vector<float>* prox_ref = nullptr;
  std::optional<std::vector<float>> grad_offset;
  std::uint64_t download_floats = 0;  // accounted before training
  std::uint64_t upload_floats = 0;    // accounted after training
  // Round id keying the fault schedule for this client step (algorithms set
  // it to the communication round, or a salted id for out-of-band passes
  // like CFL's split sweep). Decisions are pure in (seed, client, round).
  std::size_t round = 0;
};

struct RoundTrainResult {
  std::size_t client = 0;
  std::vector<float> params;  // post-training flat parameters
  double weight = 0.0;        // client's n_train (FedAvg weighting)
  float loss = 0.0f;          // mean training loss of the final epoch
  // Encoded wire payload of the delivered update — captured only while
  // Federation::int8_aggregation_active(), empty otherwise. Lets
  // aggregate_or_keep average qint8 updates in the quantized domain.
  std::vector<std::uint8_t> encoded;
  // False when the server never got a usable update — post-train crash,
  // retry budget exhausted, deadline missed, or quarantined by the
  // validator. Undelivered results must stay out of every reduction;
  // to_entries() and aggregate_or_keep() already filter them.
  bool delivered = true;
};

class ParallelRoundRunner {
 public:
  explicit ParallelRoundRunner(Federation& fed) : fed_(fed) {}

  // Runs fn(i, workspace) for i in [0, n). With pool workers available the
  // indices are chunked across threads, each chunk on a leased replica;
  // otherwise everything runs on the calling thread through the shared
  // workspace. fn must only write to per-index slots of captured state.
  void for_each_index(
      std::size_t n,
      const std::function<void(std::size_t, nn::Model&)>& fn);

  // Same, iterating a client-id list: fn(idx, clients[idx], workspace).
  void for_each_client(
      const std::vector<std::size_t>& clients,
      const std::function<void(std::size_t, std::size_t, nn::Model&)>& fn);

  // The canonical round step shared by most algorithms: download, load
  // job.start, train, then resolve delivery through the federation's fault
  // engine (upload accounting, retries, corruption, validation — see
  // Federation::deliver_update), collect. job_of(idx, client) is called
  // from worker threads and must only read round-constant or per-client
  // state. Results come back indexed like `clients`, undelivered ones
  // flagged.
  std::vector<RoundTrainResult> train_clients(
      const std::vector<std::size_t>& clients,
      const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of);

  // Streaming variant: instead of collecting results, consume(idx, result)
  // is invoked once per sampled client the moment its delivery resolves —
  // from worker threads on the in-process path (consume must be
  // thread-safe; StreamingAggregator is) and from the server thread on the
  // remote path. The result is moved in, so the consumer decides what
  // outlives the call — feeding a reduction tree keeps per-round memory
  // at O(cohort) accumulators instead of O(cohort) parameter vectors.
  // train_clients() itself is implemented on top of this.
  void train_clients_into(
      const std::vector<std::size_t>& clients,
      const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of,
      const std::function<void(std::size_t, RoundTrainResult&&)>& consume);

 private:
  // Socket-mode variant of train_clients_into, taken when the federation
  // has a remote transport installed (see fl/transport.h for the
  // three-phase split). Produces results bit-identical to the in-process
  // path.
  void train_clients_remote_into(
      const std::vector<std::size_t>& clients,
      const std::function<RoundTrainJob(std::size_t, std::size_t)>& job_of,
      const std::function<void(std::size_t, RoundTrainResult&&)>& consume);

  Federation& fed_;
};

// weighted_average input view over the *delivered* train results (index
// order preserved; faulted updates are skipped).
std::vector<std::pair<const std::vector<float>*, double>> to_entries(
    const std::vector<RoundTrainResult>& results);

// True when at least one update survived the round's faults — check before
// dividing by a total weight.
bool any_delivered(const std::vector<RoundTrainResult>& results);

// Averages `group` (already filtered to delivered results) into `model` in
// the quantized int8 domain when every member carried its qint8 wire
// payload (captured under --fast-math-kernels with the qint8 codec) and
// bumps agg.int8_rounds once per aggregate. Returns false with `model`
// untouched when any payload is missing or mis-sized — e.g. a result
// produced before the flag flipped — so the caller can fall back to exact
// float averaging.
bool try_int8_aggregate(std::vector<float>& model,
                        const std::vector<const RoundTrainResult*>& group);

// Weighted-averages the delivered results into `model`. When every update
// was lost the model is left untouched (graceful degradation) and
// fault.empty_rounds is bumped; returns whether an aggregate was applied.
bool aggregate_or_keep(std::vector<float>& model,
                       const std::vector<RoundTrainResult>& results);

}  // namespace fedclust::fl
