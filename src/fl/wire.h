#pragma once

// Versioned binary envelopes for every transfer the simulator performs.
// Layout (all fields little-endian, 44-byte header):
//
//   offset  size  field
//        0     4  magic        0xFEDC717E
//        4     2  version      1
//        6     1  message kind (MessageKind)
//        7     1  codec id     (CodecId)
//        8     8  sender       client id, or kServerSender
//       16     8  round
//       24     8  element count (floats in the decoded payload)
//       32     8  payload byte length
//       40     4  CRC32C over header bytes [0, 40) ++ payload
//       44     -  payload (see codec.h)
//
// The CRC covers the header (with the CRC field excluded) as well as the
// payload, so a bit flip anywhere in the envelope is detected. Decoding
// verifies the checksum before the payload is parsed — CRC failure is the
// first stage of the delivery quarantine path.

#include <cstdint>
#include <vector>

#include "fl/codec.h"

namespace fedclust::fl::wire {

inline constexpr std::uint32_t kMagic = 0xFEDC717Eu;
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 44;

// Sender id used for server-originated messages (model pulls, cluster
// assignments).
inline constexpr std::uint64_t kServerSender = ~std::uint64_t{0};

enum class MessageKind : std::uint8_t {
  kModelPull = 0,        // server -> client: global / cluster model
  kUpdatePush = 1,       // client -> server: trained update
  kClusterAssign = 2,    // server -> client: cluster membership verdict
  kWarmupWeights = 3,    // client -> server: warmup partials / profiles
  kSubspace = 4,         // client -> server: PACFL tensor subspace basis
};

inline constexpr std::size_t kNumMessageKinds = 5;

const char* message_kind_name(MessageKind kind);

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,       // fewer bytes than the header, or payload cut short
  kBadMagic,
  kBadVersion,
  kBadKind,
  kBadCodec,
  kLengthMismatch,  // header payload length disagrees with the byte count
  kBadChecksum,
  kBadPayload,      // CRC passed but the codec rejected the payload
};

const char* decode_status_name(DecodeStatus status);

struct Envelope {
  MessageKind kind = MessageKind::kModelPull;
  CodecId codec = CodecId::kRawF32;
  std::uint64_t sender = kServerSender;
  std::uint64_t round = 0;
  std::vector<float> payload;
};

// Total envelope size for `n` floats: header + encoded payload.
std::size_t wire_size(CodecId codec, std::size_t n);

// Serializes `n` floats into a checksummed envelope.
std::vector<std::uint8_t> encode(MessageKind kind, CodecId codec,
                                 std::uint64_t sender, std::uint64_t round,
                                 const float* payload, std::size_t n);

inline std::vector<std::uint8_t> encode(MessageKind kind, CodecId codec,
                                        std::uint64_t sender,
                                        std::uint64_t round,
                                        const std::vector<float>& payload) {
  return encode(kind, codec, sender, round, payload.data(), payload.size());
}

// Parses and verifies an envelope. Returns kOk and fills `out` on success;
// any other status leaves `out` unspecified. Never throws and never reads
// out of bounds, whatever the input bytes.
DecodeStatus try_decode(const std::uint8_t* data, std::size_t len,
                        Envelope& out);

// Throwing convenience wrapper for call sites where failure is a logic
// error (in-process round trips); the message names the DecodeStatus.
Envelope decode(const std::vector<std::uint8_t>& bytes);

}  // namespace fedclust::fl::wire
