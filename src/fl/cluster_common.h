#pragma once

// Shared steady-state machinery for clustered methods (FedClust, PACFL,
// IFCA's aggregation step): once clients carry cluster ids, every round is
// per-cluster FedAvg over the sampled clients.

#include <cstddef>
#include <vector>

#include "fl/federation.h"

namespace fedclust::fl {

// Runs one communication round: each sampled client downloads the model of
// its assigned cluster, trains locally, uploads; each cluster that received
// updates is replaced by the n_i-weighted average. Communication is
// accounted (full model down + up per sampled client).
void cluster_fedavg_round(Federation& fed, std::size_t round,
                          const std::vector<std::size_t>& assignment,
                          std::vector<std::vector<float>>& cluster_models);

// Mean local-test accuracy where each client evaluates its cluster's model.
double cluster_average_accuracy(
    Federation& fed, const std::vector<std::size_t>& assignment,
    const std::vector<std::vector<float>>& cluster_models);

}  // namespace fedclust::fl
