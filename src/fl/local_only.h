#pragma once

// "Local" baseline: every client trains its own model on its own data with
// no communication at all (the paper's pure-personalization anchor).

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace fedclust::fl {

class LocalOnly : public FlAlgorithm {
 public:
  explicit LocalOnly(Federation& fed);

  std::string name() const override { return "Local"; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  // Per-client persistent parameters; untouched clients hold θ0.
  SparseClientParams params_;
};

}  // namespace fedclust::fl
