#include "fl/stream_agg.h"

#include <stdexcept>
#include <utility>

#include "fl/codec.h"
#include "obs/metrics.h"

namespace fedclust::fl {

StreamingAggregator::StreamingAggregator(std::size_t n_slots, std::size_t dim,
                                         bool int8_mode)
    : n_slots_(n_slots), dim_(dim), int8_mode_(int8_mode) {
  if (n_slots_ == 0) {
    throw std::invalid_argument("StreamingAggregator: zero slots");
  }
  levels_.emplace_back(n_slots_);
  for (auto& leaf : levels_.front()) leaf.remaining = 1;
  while (levels_.back().size() > 1) {
    const std::size_t prev = levels_.back().size();
    std::vector<Node> level((prev + 1) / 2);
    for (std::size_t j = 0; j < level.size(); ++j) {
      level[j].remaining = (2 * j + 1 < prev) ? 2 : 1;
    }
    levels_.push_back(std::move(level));
  }
  if (int8_mode_) {
    encoded_.resize(n_slots_);
    weights_.resize(n_slots_, 0.0);
    slot_delivered_.resize(n_slots_, 0);
  }
}

void StreamingAggregator::submit(std::size_t slot, const float* v,
                                 std::size_t n, double w,
                                 std::vector<std::uint8_t>&& encoded) {
  if (n != dim_) {
    throw std::invalid_argument("StreamingAggregator: length mismatch");
  }
  if (w < 0.0) {
    throw std::invalid_argument("StreamingAggregator: negative weight");
  }
  resolve(slot, true, v, w, std::move(encoded));
}

void StreamingAggregator::skip(std::size_t slot) {
  resolve(slot, false, nullptr, 0.0, {});
}

void StreamingAggregator::resolve(std::size_t slot, bool delivered_flag,
                                  const float* v, double w,
                                  std::vector<std::uint8_t>&& encoded) {
  if (slot >= n_slots_) {
    throw std::out_of_range("StreamingAggregator: slot out of range");
  }
  std::lock_guard<std::mutex> lk(mu_);
  Node& leaf = levels_.front()[slot];
  if (leaf.remaining != 1) {
    throw std::logic_error("StreamingAggregator: slot resolved twice");
  }
  leaf.remaining = 0;
  ++resolved_;
  if (delivered_flag) {
    ++delivered_;
    leaf.w = w;
    leaf.acc.resize(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      leaf.acc[i] = w * static_cast<double>(v[i]);
    }
    if (int8_mode_) {
      encoded_[slot] = std::move(encoded);
      weights_[slot] = w;
      slot_delivered_[slot] = 1;
    }
  }

  // Fold upward while this completion also completes the parent. The fold
  // order for any pair is fixed (left + right), so the final association
  // depends only on the tree shape, never on arrival order.
  std::size_t l = 0;
  std::size_t j = slot;
  while (l + 1 < levels_.size()) {
    Node& parent = levels_[l + 1][j / 2];
    if (--parent.remaining > 0) break;
    Node& left = levels_[l][(j / 2) * 2];
    const std::size_t right_idx = (j / 2) * 2 + 1;
    if (right_idx < levels_[l].size()) {
      Node& right = levels_[l][right_idx];
      if (left.acc.empty()) {
        parent.acc = std::move(right.acc);
      } else if (right.acc.empty()) {
        parent.acc = std::move(left.acc);
      } else {
        for (std::size_t i = 0; i < dim_; ++i) left.acc[i] += right.acc[i];
        parent.acc = std::move(left.acc);
      }
      parent.w = left.w + right.w;
      std::vector<double>().swap(left.acc);
      std::vector<double>().swap(right.acc);
    } else {
      parent.acc = std::move(left.acc);
      parent.w = left.w;
      std::vector<double>().swap(left.acc);
    }
    j /= 2;
    ++l;
  }
}

bool StreamingAggregator::any_delivered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delivered_ > 0;
}

bool StreamingAggregator::finish(std::vector<float>& model) {
  std::lock_guard<std::mutex> lk(mu_);
  if (resolved_ != n_slots_) {
    throw std::logic_error("StreamingAggregator: unresolved slots at finish");
  }
  if (model.size() != dim_) {
    throw std::invalid_argument("StreamingAggregator: model length mismatch");
  }
  if (delivered_ == 0) return false;

  if (int8_mode_) {
    // Quantized-domain average over the encoded payloads, slot order — the
    // --fast-math-kernels qint8 path. Any missing/mis-sized payload (e.g. a
    // result produced before the flag flipped) falls back to the float tree.
    const std::size_t want = wire::encoded_size(wire::CodecId::kQInt8, dim_);
    bool ok = true;
    double total = 0.0;
    std::vector<std::pair<const std::vector<std::uint8_t>*, double>> entries;
    entries.reserve(delivered_);
    for (std::size_t s = 0; s < n_slots_ && ok; ++s) {
      if (slot_delivered_[s] == 0) continue;
      if (encoded_[s].size() != want) {
        ok = false;
        break;
      }
      entries.emplace_back(&encoded_[s], weights_[s]);
      total += weights_[s];
    }
    if (ok && !entries.empty() && total > 0.0) {
      for (auto& [bytes, w] : entries) w /= total;
      model = wire::qint8_weighted_average(entries, dim_);
      OBS_COUNTER_ADD("agg.int8_rounds", 1);
      return true;
    }
  }

  const Node& root = levels_.back().front();
  if (root.acc.empty() || !(root.w > 0.0)) return false;
  for (std::size_t i = 0; i < dim_; ++i) {
    model[i] = static_cast<float>(root.acc[i] / root.w);
  }
  return true;
}

}  // namespace fedclust::fl
