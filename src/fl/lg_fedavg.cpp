#include "fl/lg_fedavg.h"

#include <algorithm>
#include <stdexcept>

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

LgFedAvg::LgFedAvg(Federation& fed) : FlAlgorithm(fed) {}

void LgFedAvg::setup() {
  const auto& layout = fed_.workspace().param_layout();
  const std::size_t n_global = fed_.cfg().algo.lg_global_params;
  if (n_global == 0 || n_global > layout.size()) {
    throw std::invalid_argument("LG: lg_global_params out of range");
  }
  global_offset_ = layout[layout.size() - n_global].offset;

  // Paper §5.1: models are initialized randomly (per client) in LG for a
  // fair comparison; only the shared suffix starts in sync.
  params_.clear();
  params_.reserve(fed_.n_clients());
  const auto& init = fed_.init_params();
  global_suffix_.assign(init.begin() +
                            static_cast<std::ptrdiff_t>(global_offset_),
                        init.end());
  for (std::size_t c = 0; c < fed_.n_clients(); ++c) {
    params_.push_back(fed_.make_model(1000 + c).flat_params());
    std::copy(global_suffix_.begin(), global_suffix_.end(),
              params_[c].begin() +
                  static_cast<std::ptrdiff_t>(global_offset_));
  }
}

void LgFedAvg::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t g = fed_.model_size() - global_offset_;

  // Serialize the shared suffix once per round; clients splice in the
  // wire-decoded copy they download.
  const std::vector<float> rx_suffix = fed_.through_wire(
      wire::MessageKind::kModelPull, global_suffix_, wire::kServerSender, r);

  std::vector<std::vector<float>> suffixes(sampled.size());
  std::vector<double> weights(sampled.size());
  std::vector<char> delivered(sampled.size(), 1);

  // Each task touches only its own client's params_[c] slot.
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(sampled, [&](std::size_t idx, std::size_t c,
                                      nn::Model& ws) {
    fed_.bill_download(g);  // only the global layers move
    std::copy(rx_suffix.begin(), rx_suffix.end(),
              params_[c].begin() +
                  static_cast<std::ptrdiff_t>(global_offset_));
    ws.set_flat_params(params_[c]);
    const auto client = fed_.client(c);
    client->train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    params_[c] = ws.flat_params();
    suffixes[idx].assign(
        params_[c].begin() + static_cast<std::ptrdiff_t>(global_offset_),
        params_[c].end());
    weights[idx] = static_cast<double>(client->n_train());
    // Only the shared suffix travels; the local prefix stays on-device, so
    // a lost upload still keeps the client's personal layers trained.
    delivered[idx] = fed_.deliver_update(c, r, suffixes[idx], g) ? 1 : 0;
  });

  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < suffixes.size(); ++i) {
    if (delivered[i]) entries.emplace_back(&suffixes[i], weights[i]);
  }
  if (entries.empty()) {
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;  // global suffix carries forward unchanged
  }
  global_suffix_ = weighted_average(entries);
}

double LgFedAvg::evaluate_all() {
  // Each client evaluates with its local prefix + current global suffix,
  // matching what it would download next round. Materialized per client up
  // front so the parallel evaluation sweep reads disjoint storage.
  std::vector<std::vector<float>> eval_params(params_);
  for (auto& v : eval_params) {
    std::copy(global_suffix_.begin(), global_suffix_.end(),
              v.begin() + static_cast<std::ptrdiff_t>(global_offset_));
  }
  return fed_.average_local_accuracy(
      [&](std::size_t i) -> const std::vector<float>& {
        return eval_params[i];
      });
}

void LgFedAvg::save_state(util::BinaryWriter& w) const {
  w.write_u64(global_offset_);
  w.write_f32_vec(global_suffix_);
  write_nested_f32(w, params_);
}

void LgFedAvg::load_state(util::BinaryReader& r) {
  global_offset_ = static_cast<std::size_t>(r.read_u64());
  global_suffix_ = r.read_f32_vec();
  params_ = read_nested_f32(r);
}

}  // namespace fedclust::fl
