#pragma once

// PACFL (Vahidian et al., 2022): before any federation, each client runs a
// truncated SVD per local class and sends the top-p principal vectors of
// its raw data to the server. The server measures client similarity by the
// principal angles between those subspaces, clusters with hierarchical
// clustering, and then trains one model per cluster (per-cluster FedAvg).
//
// This is the strongest baseline in the paper; unlike FedClust it ships
// (compressed) raw-data structure rather than trained weights.

#include "fl/algorithm.h"
#include "tensor/tensor.h"

namespace fedclust::fl {

class Pacfl : public FlAlgorithm {
 public:
  explicit Pacfl(Federation& fed);

  std::string name() const override { return "PACFL"; }

  const std::vector<std::size_t>& assignment() const { return assignment_; }
  const std::vector<std::vector<float>>& cluster_models() const {
    return cluster_models_;
  }
  // Landmark clients the sketch clustered on (sorted ascending); empty in
  // exact mode. In landmark mode bases_ holds only their subspace bases.
  const std::vector<std::size_t>& landmark_ids() const {
    return landmark_ids_;
  }

  // Newcomer incorporation: the client computes and uploads its subspace
  // basis; it joins the cluster of the nearest existing client (smallest
  // principal-angle distance). Must be called after setup ran.
  std::size_t assign_newcomer(const SimClient& newcomer);

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;
  std::size_t current_clusters() const override {
    return cluster_models_.size();
  }

 private:
  // Orthonormal basis of the given dataset's per-class principal vectors.
  tensor::Tensor subspace_of(const data::Dataset& ds) const;

  std::vector<std::size_t> assignment_;
  std::vector<std::size_t> landmark_ids_;  // empty = exact clustering
  std::vector<std::vector<float>> cluster_models_;
  // Kept for newcomer matching: every client's basis in exact mode, the
  // landmark bases only in landmark mode (indexed like landmark_ids_).
  std::vector<tensor::Tensor> bases_;
};

}  // namespace fedclust::fl
