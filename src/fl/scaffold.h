#pragma once

// SCAFFOLD (Karimireddy et al., 2020) — extension baseline beyond the
// paper's comparison (the paper discusses it in §2.1). Client drift under
// non-IID data is corrected with control variates: the server keeps a
// global variate c and every client a local variate c_i; local SGD steps
// use g + c - c_i. After training, clients refresh
//   c_i' = c_i - c + (x - y_i) / (K * lr)
// and ship both the model and the variate delta (2x the communication of
// FedAvg in each direction, which the CommTracker records).

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace fedclust::fl {

class Scaffold : public FlAlgorithm {
 public:
  explicit Scaffold(Federation& fed);

  std::string name() const override { return "SCAFFOLD"; }

  const std::vector<float>& global_params() const { return global_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  std::vector<float> global_;
  std::vector<float> c_global_;
  SparseClientParams c_client_;  // persistent per client, zeros default
};

}  // namespace fedclust::fl
