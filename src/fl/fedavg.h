#pragma once

// FedAvg (McMahan et al., 2017) and FedProx (Li et al., 2020).
//
// FedProx is FedAvg with a proximal term μ/2 ||w - w_global||^2 added to
// every client's local objective, so it shares this implementation with the
// proximal coefficient switched on.

#include "fl/algorithm.h"

namespace fedclust::fl {

class FedAvg : public FlAlgorithm {
 public:
  // prox_mu > 0 turns this into FedProx.
  explicit FedAvg(Federation& fed, float prox_mu = 0.0f);

  std::string name() const override {
    return prox_mu_ > 0.0f ? "FedProx" : "FedAvg";
  }

  const std::vector<float>& global_params() const { return global_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  float prox_mu_;
  std::vector<float> global_;
};

}  // namespace fedclust::fl
