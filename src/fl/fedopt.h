#pragma once

// FedOpt family (Reddi et al., 2021) — extension baselines: the server
// treats the round's aggregated model delta as a pseudo-gradient and
// applies a server-side optimizer to the global model.
//
//   FedAvgM: server momentum    v <- beta1 v + delta;        w += eta v
//   FedAdam: server Adam        m <- b1 m + (1-b1) delta
//                               u <- b2 u + (1-b2) delta^2
//                               w += eta m / (sqrt(u) + tau)
//
// Both reduce to FedAvg for eta = 1 with momentum/Adam state disabled.

#include "fl/algorithm.h"

namespace fedclust::fl {

struct FedOptOptions {
  std::string server_opt = "momentum";  // "momentum" | "adam"
  float server_lr = 1.0f;
  float beta1 = 0.9f;
  float beta2 = 0.99f;   // adam only
  float tau = 1e-3f;     // adam epsilon
};

class FedOpt : public FlAlgorithm {
 public:
  FedOpt(Federation& fed, FedOptOptions opts);

  std::string name() const override {
    return opts_.server_opt == "adam" ? "FedAdam" : "FedAvgM";
  }

  const std::vector<float>& global_params() const { return global_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  FedOptOptions opts_;
  std::vector<float> global_;
  std::vector<double> m_;  // momentum / first moment
  std::vector<double> u_;  // second moment (adam)
};

}  // namespace fedclust::fl
