#include "fl/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/cpu.h"

namespace fedclust::fl {

namespace {

// ---- config fingerprint ---------------------------------------------
// FNV-1a 64 over a canonical little-endian serialization of every field
// that shapes the trajectory. Field order is append order below; adding a
// config field without appending it here silently weakens resume safety,
// so keep this list in sync with ExperimentConfig.

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

void put_f64_bits(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  util::put_u64_le(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  util::put_u64_le(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> canonical_config_bytes(const ExperimentConfig& c) {
  std::vector<std::uint8_t> b;
  // data_spec
  put_str(b, c.data_spec.name);
  util::put_u64_le(b, c.data_spec.channels);
  util::put_u64_le(b, c.data_spec.hw);
  util::put_u64_le(b, c.data_spec.num_classes);
  util::put_u64_le(b, c.data_spec.dict_size);
  util::put_u64_le(b, c.data_spec.atoms_per_class);
  util::put_u64_le(b, c.data_spec.prototypes_per_class);
  util::put_f32_le(b, c.data_spec.coeff_jitter);
  util::put_f32_le(b, c.data_spec.proto_scale);
  util::put_f32_le(b, c.data_spec.noise);
  util::put_f32_le(b, c.data_spec.grating_scale);
  // fed
  util::put_u64_le(b, c.fed.n_clients);
  util::put_u64_le(b, c.fed.train_per_client);
  util::put_u64_le(b, c.fed.test_per_client);
  put_f64_bits(b, c.fed.quantity_skew_factor);
  put_str(b, c.fed.partition);
  put_f64_bits(b, c.fed.skew_fraction);
  put_f64_bits(b, c.fed.dirichlet_alpha);
  util::put_u64_le(b, c.fed.label_set_pool);
  // model
  put_str(b, c.model.arch);
  util::put_u64_le(b, c.model.in_channels);
  util::put_u64_le(b, c.model.image_hw);
  util::put_u64_le(b, c.model.num_classes);
  util::put_u64_le(b, c.model.width);
  // local
  util::put_u64_le(b, c.local.epochs);
  util::put_u64_le(b, c.local.batch_size);
  util::put_f32_le(b, c.local.lr);
  util::put_f32_le(b, c.local.momentum);
  util::put_f32_le(b, c.local.weight_decay);
  util::put_f32_le(b, c.local.clip_grad_norm);
  util::put_f32_le(b, c.local.prox_mu);
  // algo
  util::put_f32_le(b, c.algo.prox_mu);
  util::put_u64_le(b, c.algo.lg_global_params);
  util::put_f32_le(b, c.algo.perfedavg_alpha);
  util::put_f32_le(b, c.algo.perfedavg_beta);
  util::put_u64_le(b, c.algo.perfedavg_eval_epochs);
  util::put_f32_le(b, c.algo.cfl_eps1);
  util::put_f32_le(b, c.algo.cfl_eps2);
  util::put_u64_le(b, c.algo.ifca_k);
  util::put_u64_le(b, c.algo.pacfl_p);
  util::put_f32_le(b, c.algo.pacfl_threshold_deg);
  util::put_u64_le(b, c.algo.pacfl_k);
  util::put_f32_le(b, c.algo.fedclust_lambda);
  util::put_u64_le(b, c.algo.fedclust_k);
  put_str(b, c.algo.fedclust_linkage);
  put_str(b, c.algo.fedclust_distance);
  util::put_u64_le(b, c.algo.fedclust_init_epochs);
  util::put_f32_le(b, c.algo.fedclust_init_lr);
  // run shape
  util::put_u64_le(b, c.rounds);
  put_f64_bits(b, c.sample_fraction);
  util::put_u64_le(b, c.eval_every);
  put_f64_bits(b, c.dropout_prob);
  // fault plan
  put_f64_bits(b, c.fault.pre_round_dropout);
  put_f64_bits(b, c.fault.post_train_crash);
  put_f64_bits(b, c.fault.straggler_prob);
  put_f64_bits(b, c.fault.straggler_delay);
  put_f64_bits(b, c.fault.transient_comm_prob);
  put_f64_bits(b, c.fault.corrupt_prob);
  put_str(b, c.fault.corrupt_mode);
  put_f64_bits(b, c.fault.explode_factor);
  put_f64_bits(b, c.fault.round_deadline);
  util::put_u64_le(b, c.fault.max_retries);
  put_f64_bits(b, c.fault.backoff_base);
  put_f64_bits(b, c.fault.backoff_mult);
  put_f64_bits(b, c.fault.over_select_fraction);
  put_f64_bits(b, c.fault.max_update_norm);
  util::put_u64_le(b, c.fault.only_clients.size());
  for (const std::size_t id : c.fault.only_clients) util::put_u64_le(b, id);
  b.push_back(c.fault.enabled ? 1 : 0);
  // wire + seed
  b.push_back(static_cast<std::uint8_t>(c.codec));
  util::put_u64_le(b, c.seed);
  // eval_clients changes every recorded accuracy, so it fingerprints;
  // virtual_clients/client_cache are deliberately absent — like
  // FEDCLUST_THREADS they are perf dials that must not change results.
  util::put_u64_le(b, c.eval_clients);
  // Landmark clustering changes the partition and thus the trajectory, so
  // it fingerprints — but only when active: landmarks == 0 is byte-for-byte
  // the exact-path config it always was, so --landmarks=0 runs (and their
  // snapshots) stay bit-compatible with pre-landmark builds.
  if (c.landmarks > 0) util::put_u64_le(b, c.landmarks);
  return b;
}

// ---- body (de)serialization -----------------------------------------

void write_rng_state(util::BinaryWriter& w, const util::RngState& st) {
  w.write_u64(st.seed);
  for (const std::uint64_t s : st.s) w.write_u64(s);
  w.write_u32(st.has_cached_normal ? 1u : 0u);
  w.write_f64(st.cached_normal);
}

util::RngState read_rng_state(util::BinaryReader& r) {
  util::RngState st;
  st.seed = r.read_u64();
  for (auto& s : st.s) s = r.read_u64();
  st.has_cached_normal = r.read_u32() != 0;
  st.cached_normal = r.read_f64();
  return st;
}

std::string serialize_body(const RunSnapshot& snap) {
  std::ostringstream os(std::ios::binary);
  util::BinaryWriter w(os);
  w.write_u64(snap.config_fingerprint);
  w.write_u64(snap.seed);
  w.write_u64(snap.next_round);
  w.write_string(snap.method);
  w.write_string(snap.dataset);
  w.write_u64(snap.comm.bytes_up);
  w.write_u64(snap.comm.bytes_down);
  w.write_u64(snap.comm.payload_bytes);
  w.write_u64(snap.comm.wire_bytes);
  w.write_u64(snap.comm.messages);
  w.write_u64(snap.records.size());
  for (const RoundRecord& rec : snap.records) {
    w.write_u64(rec.round);
    w.write_f64(rec.avg_local_test_acc);
    w.write_u64(rec.bytes_up);
    w.write_u64(rec.bytes_down);
    w.write_u64(rec.n_clusters);
  }
  w.write_u64(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    w.write_string(name);
    w.write_u64(value);
  }
  w.write_u64(snap.rng_probes.size());
  for (const RngProbe& p : snap.rng_probes) {
    w.write_string(p.name);
    write_rng_state(w, p.state);
  }
  w.write_u64(snap.algo_state.size());
  w.write_bytes(snap.algo_state.data(), snap.algo_state.size());
  return os.str();
}

RunSnapshot parse_body(const std::string& body) {
  std::istringstream is(body, std::ios::binary);
  util::BinaryReader r(is);
  RunSnapshot snap;
  snap.config_fingerprint = r.read_u64();
  snap.seed = r.read_u64();
  snap.next_round = r.read_u64();
  snap.method = r.read_string();
  snap.dataset = r.read_string();
  snap.comm.bytes_up = r.read_u64();
  snap.comm.bytes_down = r.read_u64();
  snap.comm.payload_bytes = r.read_u64();
  snap.comm.wire_bytes = r.read_u64();
  snap.comm.messages = r.read_u64();
  const std::uint64_t n_records = r.read_u64();
  snap.records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    RoundRecord rec;
    rec.round = r.read_u64();
    rec.avg_local_test_acc = r.read_f64();
    rec.bytes_up = r.read_u64();
    rec.bytes_down = r.read_u64();
    rec.n_clusters = r.read_u64();
    snap.records.push_back(rec);
  }
  const std::uint64_t n_counters = r.read_u64();
  snap.counters.reserve(n_counters);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = r.read_string();
    const std::uint64_t value = r.read_u64();
    snap.counters.emplace_back(std::move(name), value);
  }
  const std::uint64_t n_probes = r.read_u64();
  snap.rng_probes.reserve(n_probes);
  for (std::uint64_t i = 0; i < n_probes; ++i) {
    RngProbe p;
    p.name = r.read_string();
    p.state = read_rng_state(r);
    snap.rng_probes.push_back(std::move(p));
  }
  const std::uint64_t n_state = r.read_u64();
  snap.algo_state = r.read_bytes(n_state);
  return snap;
}

// ---- manifest helpers -----------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jstr(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string jnum(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::uint64_t config_fingerprint(const ExperimentConfig& cfg) {
  return fnv1a64(canonical_config_bytes(cfg));
}

std::vector<RngProbe> rng_probes_for(const ExperimentConfig& cfg) {
  // Mirrors the stream-split constants in federation.cpp (sample_round and
  // train_rng): a resumed binary whose splits land elsewhere would silently
  // diverge, so these states are compared bit for bit on resume.
  const util::Rng root(cfg.seed);
  std::vector<RngProbe> probes;
  probes.push_back({"root", root.state()});
  probes.push_back({"sampler.r0", root.split(0xA11CE000ULL).state()});
  probes.push_back({"train.c0.r0", root.split(0xC11E47000000ULL).state()});
  // fl/landmark.h kLandmarkStream — the landmark-id sampling stream. Probed
  // only when landmark mode is on, so exact-mode snapshots keep their
  // pre-landmark byte layout.
  if (cfg.landmarks > 0) {
    probes.push_back({"landmark", root.split(0x1A7DB4A2C5EEDULL).state()});
  }
  return probes;
}

std::vector<std::uint8_t> serialize_snapshot(const RunSnapshot& snap) {
  const std::string body = serialize_body(snap);
  std::vector<std::uint8_t> out;
  out.reserve(kSnapshotHeaderBytes + body.size());
  util::put_u32_le(out, kSnapshotMagic);
  util::put_u16_le(out, kSnapshotVersion);
  util::put_u16_le(out, 0);  // reserved
  util::put_u64_le(out, body.size());
  util::put_u32_le(
      out, util::crc32c(reinterpret_cast<const std::uint8_t*>(body.data()),
                        body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

RunSnapshot parse_snapshot(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    throw SnapshotError("snapshot truncated: " + std::to_string(bytes.size()) +
                        " bytes is smaller than the header");
  }
  const std::uint8_t* p = bytes.data();
  if (util::get_u32_le(p) != kSnapshotMagic) {
    throw SnapshotError("snapshot magic mismatch (not a snapshot file?)");
  }
  const std::uint16_t version = util::get_u16_le(p + 4);
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  }
  // Reserved must be zero so every header bit is validated — a single bit
  // flip anywhere in the file is rejected (snapshot_test flips each one).
  if (util::get_u16_le(p + 6) != 0) {
    throw SnapshotError("snapshot reserved field is non-zero");
  }
  const std::uint64_t body_len = util::get_u64_le(p + 8);
  if (bytes.size() != kSnapshotHeaderBytes + body_len) {
    throw SnapshotError(
        "snapshot length mismatch: header declares " +
        std::to_string(body_len) + " body bytes, file carries " +
        std::to_string(bytes.size() - kSnapshotHeaderBytes));
  }
  const std::uint32_t want_crc = util::get_u32_le(p + 16);
  const std::uint32_t got_crc =
      util::crc32c(p + kSnapshotHeaderBytes, body_len);
  if (want_crc != got_crc) {
    throw SnapshotError("snapshot body CRC mismatch: file corrupt");
  }
  try {
    return parse_body(std::string(
        reinterpret_cast<const char*>(p + kSnapshotHeaderBytes), body_len));
  } catch (const std::runtime_error& e) {
    // CRC-valid bytes that still fail to parse mean a writer bug, not disk
    // corruption, but the caller's handling is the same.
    throw SnapshotError(std::string("snapshot body malformed: ") + e.what());
  }
}

void write_snapshot(const RunSnapshot& snap, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SnapshotError("cannot open for write: " + tmp);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) throw SnapshotError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapshotError("cannot rename " + tmp + " -> " + path);
  }
}

RunSnapshot load_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open snapshot: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  return parse_snapshot(bytes);
}

std::string snapshot_filename(std::uint64_t next_round) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.fcsnap",
                static_cast<unsigned long long>(next_round));
  return buf;
}

// ---- manifest --------------------------------------------------------

std::string build_git_describe() {
#ifdef FEDCLUST_GIT_DESCRIBE
  return FEDCLUST_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string manifest_json(const ExperimentConfig& cfg,
                          const std::string& method) {
  const std::string git_describe = build_git_describe();
#ifdef FEDCLUST_BUILD_FLAGS
  const std::string build_flags = FEDCLUST_BUILD_FLAGS;
#else
  const std::string build_flags = "unknown";
#endif
  const char* threads_env = std::getenv("FEDCLUST_THREADS");
  const std::string threads = threads_env ? threads_env : "";

  char fp_hex[24];
  std::snprintf(fp_hex, sizeof(fp_hex), "0x%016llx",
                static_cast<unsigned long long>(config_fingerprint(cfg)));

  std::ostringstream os;
  os << "{\n";
  os << "  \"manifest_version\": 1,\n";
  os << "  \"method\": " << jstr(method) << ",\n";
  os << "  \"config_fingerprint\": " << jstr(fp_hex) << ",\n";
  os << "  \"seed\": " << cfg.seed << ",\n";
  os << "  \"codec\": " << jstr(wire::codec_name(cfg.codec)) << ",\n";
  os << "  \"fault_spec\": " << jstr(cfg.fault.describe()) << ",\n";
  os << "  \"git_describe\": " << jstr(git_describe) << ",\n";
  os << "  \"build_flags\": " << jstr(build_flags) << ",\n";
  os << "  \"fedclust_threads\": " << jstr(threads) << ",\n";
  os << "  \"kernels\": {\n";
  os << "    \"isa\": " << jstr(util::isa_name(util::active_isa())) << ",\n";
  os << "    \"fast_math\": "
     << (util::fast_math_kernels() ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"config\": {\n";
  os << "    \"data\": {\n";
  os << "      \"name\": " << jstr(cfg.data_spec.name) << ",\n";
  os << "      \"channels\": " << cfg.data_spec.channels << ",\n";
  os << "      \"hw\": " << cfg.data_spec.hw << ",\n";
  os << "      \"num_classes\": " << cfg.data_spec.num_classes << ",\n";
  os << "      \"dict_size\": " << cfg.data_spec.dict_size << ",\n";
  os << "      \"atoms_per_class\": " << cfg.data_spec.atoms_per_class
     << ",\n";
  os << "      \"prototypes_per_class\": "
     << cfg.data_spec.prototypes_per_class << ",\n";
  os << "      \"coeff_jitter\": " << jnum(cfg.data_spec.coeff_jitter)
     << ",\n";
  os << "      \"proto_scale\": " << jnum(cfg.data_spec.proto_scale) << ",\n";
  os << "      \"noise\": " << jnum(cfg.data_spec.noise) << ",\n";
  os << "      \"grating_scale\": " << jnum(cfg.data_spec.grating_scale)
     << "\n";
  os << "    },\n";
  os << "    \"federation\": {\n";
  os << "      \"n_clients\": " << cfg.fed.n_clients << ",\n";
  os << "      \"train_per_client\": " << cfg.fed.train_per_client << ",\n";
  os << "      \"test_per_client\": " << cfg.fed.test_per_client << ",\n";
  os << "      \"quantity_skew_factor\": "
     << jnum(cfg.fed.quantity_skew_factor) << ",\n";
  os << "      \"partition\": " << jstr(cfg.fed.partition) << ",\n";
  os << "      \"skew_fraction\": " << jnum(cfg.fed.skew_fraction) << ",\n";
  os << "      \"dirichlet_alpha\": " << jnum(cfg.fed.dirichlet_alpha)
     << ",\n";
  os << "      \"label_set_pool\": " << cfg.fed.label_set_pool << "\n";
  os << "    },\n";
  os << "    \"model\": {\n";
  os << "      \"arch\": " << jstr(cfg.model.arch) << ",\n";
  os << "      \"in_channels\": " << cfg.model.in_channels << ",\n";
  os << "      \"image_hw\": " << cfg.model.image_hw << ",\n";
  os << "      \"num_classes\": " << cfg.model.num_classes << ",\n";
  os << "      \"width\": " << cfg.model.width << "\n";
  os << "    },\n";
  os << "    \"local\": {\n";
  os << "      \"epochs\": " << cfg.local.epochs << ",\n";
  os << "      \"batch_size\": " << cfg.local.batch_size << ",\n";
  os << "      \"lr\": " << jnum(cfg.local.lr) << ",\n";
  os << "      \"momentum\": " << jnum(cfg.local.momentum) << ",\n";
  os << "      \"weight_decay\": " << jnum(cfg.local.weight_decay) << ",\n";
  os << "      \"clip_grad_norm\": " << jnum(cfg.local.clip_grad_norm)
     << ",\n";
  os << "      \"prox_mu\": " << jnum(cfg.local.prox_mu) << "\n";
  os << "    },\n";
  os << "    \"algo\": {\n";
  os << "      \"prox_mu\": " << jnum(cfg.algo.prox_mu) << ",\n";
  os << "      \"lg_global_params\": " << cfg.algo.lg_global_params << ",\n";
  os << "      \"perfedavg_alpha\": " << jnum(cfg.algo.perfedavg_alpha)
     << ",\n";
  os << "      \"perfedavg_beta\": " << jnum(cfg.algo.perfedavg_beta)
     << ",\n";
  os << "      \"perfedavg_eval_epochs\": " << cfg.algo.perfedavg_eval_epochs
     << ",\n";
  os << "      \"cfl_eps1\": " << jnum(cfg.algo.cfl_eps1) << ",\n";
  os << "      \"cfl_eps2\": " << jnum(cfg.algo.cfl_eps2) << ",\n";
  os << "      \"ifca_k\": " << cfg.algo.ifca_k << ",\n";
  os << "      \"pacfl_p\": " << cfg.algo.pacfl_p << ",\n";
  os << "      \"pacfl_threshold_deg\": "
     << jnum(cfg.algo.pacfl_threshold_deg) << ",\n";
  os << "      \"pacfl_k\": " << cfg.algo.pacfl_k << ",\n";
  os << "      \"fedclust_lambda\": " << jnum(cfg.algo.fedclust_lambda)
     << ",\n";
  os << "      \"fedclust_k\": " << cfg.algo.fedclust_k << ",\n";
  os << "      \"fedclust_linkage\": " << jstr(cfg.algo.fedclust_linkage)
     << ",\n";
  os << "      \"fedclust_distance\": " << jstr(cfg.algo.fedclust_distance)
     << ",\n";
  os << "      \"fedclust_init_epochs\": " << cfg.algo.fedclust_init_epochs
     << ",\n";
  os << "      \"fedclust_init_lr\": " << jnum(cfg.algo.fedclust_init_lr)
     << "\n";
  os << "    },\n";
  os << "    \"rounds\": " << cfg.rounds << ",\n";
  os << "    \"sample_fraction\": " << jnum(cfg.sample_fraction) << ",\n";
  os << "    \"eval_every\": " << cfg.eval_every << ",\n";
  os << "    \"dropout_prob\": " << jnum(cfg.dropout_prob) << ",\n";
  os << "    \"virtual_clients\": "
     << (cfg.virtual_clients ? "true" : "false") << ",\n";
  os << "    \"client_cache\": " << cfg.client_cache << ",\n";
  os << "    \"eval_clients\": " << cfg.eval_clients << ",\n";
  os << "    \"landmarks\": " << cfg.landmarks << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

void write_manifest(const ExperimentConfig& cfg, const std::string& method,
                    const std::string& dir) {
  const std::string path = dir + "/manifest.json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw SnapshotError("cannot open for write: " + tmp);
    os << manifest_json(cfg, method);
    os.flush();
    if (!os) throw SnapshotError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapshotError("cannot rename " + tmp + " -> " + path);
  }
}

// ---- shared save_state/load_state helpers ---------------------------

void write_nested_f32(util::BinaryWriter& w,
                      const std::vector<std::vector<float>>& v) {
  w.write_u64(v.size());
  for (const auto& inner : v) w.write_f32_vec(inner);
}

std::vector<std::vector<float>> read_nested_f32(util::BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  std::vector<std::vector<float>> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.read_f32_vec());
  return v;
}

void write_index_vec(util::BinaryWriter& w,
                     const std::vector<std::size_t>& v) {
  w.write_u64(v.size());
  for (const std::size_t x : v) w.write_u64(x);
}

std::vector<std::size_t> read_index_vec(util::BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  std::vector<std::size_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(static_cast<std::size_t>(r.read_u64()));
  }
  return v;
}

void write_tensor(util::BinaryWriter& w, const tensor::Tensor& t) {
  w.write_u64(t.shape().size());
  for (const std::size_t d : t.shape()) w.write_u64(d);
  w.write_f32_vec(t.vec());
}

tensor::Tensor read_tensor(util::BinaryReader& r) {
  const std::uint64_t ndim = r.read_u64();
  tensor::Shape shape;
  shape.reserve(ndim);
  for (std::uint64_t i = 0; i < ndim; ++i) {
    shape.push_back(static_cast<std::size_t>(r.read_u64()));
  }
  std::vector<float> data = r.read_f32_vec();
  return tensor::Tensor(std::move(shape), std::move(data));
}

}  // namespace fedclust::fl
