#pragma once

// Sparse per-client server state.
//
// Algorithms that keep a vector per client (LocalOnly's weights, Ditto's
// personal models, SCAFFOLD's control variates, FedDyn's lagged gradients)
// used to allocate n_clients dense vectors up front — an O(population *
// model) footprint that defeats the virtual client store. SparseClientParams
// stores only the slots a round has actually touched; every untouched
// client logically holds the shared default (θ0 or zeros), exactly what the
// dense representation held before its first write. Snapshots persist only
// the touched slots, sorted by client id, so checkpoint size scales with
// participation, not population (docs/INVARIANTS.md §Scale).

#include <cstddef>
#include <map>
#include <vector>

#include "util/serialization.h"

namespace fedclust::fl {

class SparseClientParams {
 public:
  SparseClientParams() = default;

  // Resets to `n_clients` slots, all logically holding `default_value`.
  void reset(std::size_t n_clients, std::vector<float> default_value);

  std::size_t n_clients() const { return n_clients_; }
  std::size_t touched_count() const { return touched_.size(); }

  // Read view: the client's vector, or the shared default when untouched.
  // Const and allocation-free, so concurrent get() calls are safe while no
  // thread is touch()ing.
  const std::vector<float>& get(std::size_t i) const;

  // Materializes client i's slot (copying the default on first touch) and
  // returns a mutable reference. Not safe concurrently with anything:
  // pre-touch the round's cohort sequentially before a parallel fan-out —
  // after that, each worker's reference is stable and per-slot writes
  // don't race (map nodes never move).
  std::vector<float>& touch(std::size_t i);

  // Layout: u64 n_clients, u64 touched count, then (u64 id, f32_vec) pairs
  // in strictly ascending id order.
  void save(util::BinaryWriter& w) const;
  // Requires reset() first (the default defines the expected dimension);
  // throws std::runtime_error on any structural corruption — id out of
  // range, ids not strictly ascending, dimension mismatch, or a population
  // that disagrees with the reset.
  void load(util::BinaryReader& r);

 private:
  std::size_t n_clients_ = 0;
  std::vector<float> default_;
  // Ordered map: save() iterates in id order for free, and node-based
  // storage keeps touch()ed references stable across later touches.
  std::map<std::size_t, std::vector<float>> touched_;
};

}  // namespace fedclust::fl
