#include "fl/fedopt.h"

#include <cmath>
#include <stdexcept>

namespace fedclust::fl {

FedOpt::FedOpt(Federation& fed, FedOptOptions opts)
    : FlAlgorithm(fed), opts_(std::move(opts)) {
  if (opts_.server_opt != "momentum" && opts_.server_opt != "adam") {
    throw std::invalid_argument("FedOpt: unknown server optimizer " +
                                opts_.server_opt);
  }
}

void FedOpt::setup() {
  global_ = fed_.init_params();
  m_.assign(fed_.model_size(), 0.0);
  u_.assign(fed_.model_size(), 0.0);
}

void FedOpt::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  std::vector<std::vector<float>> updates;
  std::vector<double> weights;
  for (const std::size_t c : sampled) {
    fed_.comm().download_floats(p);
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    fed_.comm().upload_floats(p);
    updates.push_back(ws.flat_params());
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
  }
  std::vector<std::pair<const std::vector<float>*, double>> entries;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    entries.emplace_back(&updates[i], weights[i]);
  }
  const auto mean_w = weighted_average(entries);

  // Pseudo-gradient = aggregated movement away from the current global.
  for (std::size_t j = 0; j < p; ++j) {
    const double delta = static_cast<double>(mean_w[j]) - global_[j];
    if (opts_.server_opt == "momentum") {
      m_[j] = opts_.beta1 * m_[j] + delta;
      global_[j] += static_cast<float>(opts_.server_lr * m_[j]);
    } else {  // adam
      m_[j] = opts_.beta1 * m_[j] + (1.0 - opts_.beta1) * delta;
      u_[j] = opts_.beta2 * u_[j] + (1.0 - opts_.beta2) * delta * delta;
      global_[j] += static_cast<float>(opts_.server_lr * m_[j] /
                                       (std::sqrt(u_[j]) + opts_.tau));
    }
  }
}

double FedOpt::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

}  // namespace fedclust::fl
