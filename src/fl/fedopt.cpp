#include "fl/fedopt.h"

#include <cmath>
#include <stdexcept>

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

FedOpt::FedOpt(Federation& fed, FedOptOptions opts)
    : FlAlgorithm(fed), opts_(std::move(opts)) {
  if (opts_.server_opt != "momentum" && opts_.server_opt != "adam") {
    throw std::invalid_argument("FedOpt: unknown server optimizer " +
                                opts_.server_opt);
  }
}

void FedOpt::setup() {
  global_ = fed_.init_params();
  m_.assign(fed_.model_size(), 0.0);
  u_.assign(fed_.model_size(), 0.0);
}

void FedOpt::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;
        job.opts = fed_.cfg().local;
        job.rng = fed_.train_rng(c, r);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = r;
        return job;
      });

  if (!any_delivered(results)) {
    // No pseudo-gradient this round; model and optimizer state stand still.
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;
  }
  const auto mean_w = weighted_average(to_entries(results));

  // Pseudo-gradient = aggregated movement away from the current global.
  for (std::size_t j = 0; j < p; ++j) {
    const double delta = static_cast<double>(mean_w[j]) - global_[j];
    if (opts_.server_opt == "momentum") {
      m_[j] = opts_.beta1 * m_[j] + delta;
      global_[j] += static_cast<float>(opts_.server_lr * m_[j]);
    } else {  // adam
      m_[j] = opts_.beta1 * m_[j] + (1.0 - opts_.beta1) * delta;
      u_[j] = opts_.beta2 * u_[j] + (1.0 - opts_.beta2) * delta * delta;
      global_[j] += static_cast<float>(opts_.server_lr * m_[j] /
                                       (std::sqrt(u_[j]) + opts_.tau));
    }
  }
}

double FedOpt::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void FedOpt::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
  w.write_f64_vec(m_);
  w.write_f64_vec(u_);
}

void FedOpt::load_state(util::BinaryReader& r) {
  global_ = r.read_f32_vec();
  m_ = r.read_f64_vec();
  u_ = r.read_f64_vec();
}

}  // namespace fedclust::fl
