#pragma once

// Deterministic fault injection and server-side update validation.
//
// A FaultPlan describes a chaos campaign — per-(client, round) probabilities
// for four fault classes plus the server's resilience policy — and a
// FaultEngine turns it into a concrete schedule that is a pure function of
// (seed, client, round). Decisions are derived from a private RNG stream
// split per (client, round), so they never touch the training streams and
// are identical at any FEDCLUST_THREADS value (the thread-count-invariance
// contract in ROADMAP.md).
//
// Fault classes and their cost profiles (paper §4.2 only models the first):
//   pre-round dropout   — client never trains: no compute, no comm.
//   post-train crash    — compute spent, update lost before upload: no
//                         upload bytes.
//   straggler           — compute spent, upload lands after the round
//                         deadline: comm spent, update discarded.
//   corrupted update    — compute and comm spent; the server's
//                         UpdateValidator quarantines it before aggregation.
// Transient comm faults sit across classes: each failed upload attempt puts
// bytes on the wire and triggers a bounded retry-with-backoff; exhausting
// the retry budget loses the update (comm spent, update lost).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fedclust::fl {

// How a corrupted update is mangled before upload.
enum class CorruptionKind : std::uint8_t {
  kNone = 0,
  kNan,       // a deterministic subset of entries becomes NaN
  kInf,       // a deterministic subset of entries becomes ±Inf
  kExplode,   // every entry is scaled by explode_factor (norm explosion)
  kBitFlip,   // one mantissa/exponent bit flips in a few entries (silent —
              // only the norm bound can catch it, and only sometimes)
};

struct FaultPlan {
  // ---- injection: per-(client, round) probabilities ---------------------
  double pre_round_dropout = 0.0;    // [0, 1): absorbs the legacy
                                     // ExperimentConfig::dropout_prob knob
  double post_train_crash = 0.0;     // [0, 1)
  double straggler_prob = 0.0;       // [0, 1)
  double straggler_delay = 3.0;      // max delay factor; the delay is drawn
                                     // uniformly in [1, straggler_delay]
  double transient_comm_prob = 0.0;  // [0, 1) per upload attempt
  double corrupt_prob = 0.0;         // [0, 1)
  std::string corrupt_mode = "mix";  // nan|inf|explode|bitflip|mix
  double explode_factor = 1e6;       // scale used by kExplode

  // ---- server-side resilience policy ------------------------------------
  // Round deadline in normalized time units (a fault-free client round
  // costs 1.0; stragglers multiply it, retries add backoff). 0 = no
  // deadline: stragglers are waited out and only shift metrics.
  double round_deadline = 0.0;
  std::size_t max_retries = 2;       // upload retransmissions before giving up
  // Retry backoff schedule, shared between the simulated comm faults
  // (Federation::deliver_update's sim-time accounting) and the real
  // transport's reconnect/resend policy (net::BackoffPolicy): the delay
  // before retransmission i (1-based) is backoff_base * backoff_mult^(i-1).
  double backoff_base = 0.25;        // seconds (sim: normalized time units)
  double backoff_mult = 2.0;         // >= 1
  double over_select_fraction = 0.0; // sample ceil(k * (1 + f)) clients to
                                     // hedge expected dropouts
  double max_update_norm = 0.0;      // L2 bound for the validator; 0 = off

  // Restrict injection to these client ids (empty = every client). Lets
  // chaos campaigns target one cluster's membership.
  std::vector<std::size_t> only_clients;

  // Explicit switch so an all-zero plan can still exercise the engine code
  // path (the zero-fault ≡ disabled invariant). parse() always sets it.
  bool enabled = false;

  // True when the engine should participate in round execution at all.
  bool active() const;
  // Throws std::invalid_argument naming the offending field.
  void validate() const;
  // Parses "key=value,key=value" (e.g. "crash=0.1,straggle=0.3,delay=4,
  // deadline=2.5,corrupt=0.05,corrupt_mode=nan,comm=0.2,retries=3,
  // backoff_base=0.5,backoff_mult=1.5,dropout=0.1,over_select=0.5,
  // max_norm=500,only=0:3:7"). An empty spec yields a disabled plan;
  // unknown keys throw.
  static FaultPlan parse(const std::string& spec);
  // Compact "key=value ..." rendering of the non-default fields.
  std::string describe() const;
};

// The per-(client, round) fault outcome, fully determined before any work
// happens. All draws for one (client, round) come from one split stream in
// a fixed order, so adding consumers cannot reshuffle sibling decisions.
struct FaultDecision {
  bool drop_pre_round = false;
  bool crash_post_train = false;
  bool straggler = false;
  double delay_factor = 1.0;           // ≥ 1; only > 1 for stragglers
  CorruptionKind corrupt = CorruptionKind::kNone;
  std::size_t transient_failures = 0;  // failed upload attempts (capped at
                                       // max_retries + 1)
};

class FaultEngine {
 public:
  FaultEngine() = default;
  FaultEngine(FaultPlan plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return plan_.active(); }

  // Pure function of (seed, client, round): thread-safe, call-order
  // independent, and identical across processes with the same seed.
  FaultDecision decide(std::size_t client, std::size_t round) const;

  // Applies `kind` to `params` in place, deterministically in
  // (seed, client, round). No-op for kNone.
  void corrupt_update(std::vector<float>& params, std::size_t client,
                      std::size_t round, CorruptionKind kind) const;

  // Bit-flip corruption against real wire bytes: flips three random bits of
  // the serialized envelope in place, deterministically in
  // (seed, client, round) — the same private stream corrupt_update uses, so
  // at most one of the two runs per delivery. The envelope CRC then catches
  // the damage before the payload is decoded.
  void corrupt_wire(std::vector<std::uint8_t>& bytes, std::size_t client,
                    std::size_t round) const;

 private:
  bool applies_to(std::size_t client) const;

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
};

// Server-side quarantine, run on every collected update before it can touch
// the floating-point reduction order. The finiteness check is always on (a
// NaN in one update would poison the whole aggregate); the L2 norm bound is
// active when max_norm > 0.
class UpdateValidator {
 public:
  UpdateValidator() = default;
  explicit UpdateValidator(double max_norm) : max_norm_(max_norm) {}

  // nullptr when the update is acceptable, else a static reason string
  // ("non_finite" | "norm_bound") for metrics and logs.
  const char* check(const std::vector<float>& params) const;

  double max_norm() const { return max_norm_; }

 private:
  double max_norm_ = 0.0;
};

}  // namespace fedclust::fl
