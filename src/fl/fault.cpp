#include "fl/fault.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/journal.h"

namespace fedclust::fl {

namespace {

// Stream salts for the engine's private RNG streams. Decisions and
// corruption payloads use different salts so one cannot perturb the other.
constexpr std::uint64_t kDecisionSalt = 0xFA017DEC00000000ULL;
constexpr std::uint64_t kCorruptSalt = 0xFA017C0B00000000ULL;
constexpr std::uint64_t kClientStride = 1000003ULL;  // prime, as train_rng

void check_prob(const char* field, double v) {
  if (!(v >= 0.0) || v >= 1.0) {
    throw std::invalid_argument(std::string("FaultPlan.") + field +
                                " must be in [0, 1), got " +
                                std::to_string(v));
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad value '" + value +
                                "' for key '" + key + "'");
  }
}

}  // namespace

bool FaultPlan::active() const {
  return enabled || pre_round_dropout > 0.0 || post_train_crash > 0.0 ||
         straggler_prob > 0.0 || transient_comm_prob > 0.0 ||
         corrupt_prob > 0.0;
}

void FaultPlan::validate() const {
  check_prob("pre_round_dropout", pre_round_dropout);
  check_prob("post_train_crash", post_train_crash);
  check_prob("straggler_prob", straggler_prob);
  check_prob("transient_comm_prob", transient_comm_prob);
  check_prob("corrupt_prob", corrupt_prob);
  if (!(straggler_delay >= 1.0)) {
    throw std::invalid_argument(
        "FaultPlan.straggler_delay must be >= 1, got " +
        std::to_string(straggler_delay));
  }
  if (!(explode_factor > 0.0) || !std::isfinite(explode_factor)) {
    throw std::invalid_argument(
        "FaultPlan.explode_factor must be finite and > 0, got " +
        std::to_string(explode_factor));
  }
  if (!(round_deadline >= 0.0)) {
    throw std::invalid_argument(
        "FaultPlan.round_deadline must be >= 0, got " +
        std::to_string(round_deadline));
  }
  if (!(over_select_fraction >= 0.0)) {
    throw std::invalid_argument(
        "FaultPlan.over_select_fraction must be >= 0, got " +
        std::to_string(over_select_fraction));
  }
  if (!(max_update_norm >= 0.0)) {
    throw std::invalid_argument(
        "FaultPlan.max_update_norm must be >= 0, got " +
        std::to_string(max_update_norm));
  }
  if (!(backoff_base > 0.0) || !std::isfinite(backoff_base)) {
    throw std::invalid_argument(
        "FaultPlan.backoff_base must be finite and > 0, got " +
        std::to_string(backoff_base));
  }
  if (!(backoff_mult >= 1.0) || !std::isfinite(backoff_mult)) {
    throw std::invalid_argument(
        "FaultPlan.backoff_mult must be finite and >= 1, got " +
        std::to_string(backoff_mult));
  }
  if (corrupt_mode != "nan" && corrupt_mode != "inf" &&
      corrupt_mode != "explode" && corrupt_mode != "bitflip" &&
      corrupt_mode != "mix") {
    throw std::invalid_argument(
        "FaultPlan.corrupt_mode must be nan|inf|explode|bitflip|mix, got " +
        corrupt_mode);
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;  // disabled
  plan.enabled = true;

  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "dropout" || key == "pre_dropout") {
      plan.pre_round_dropout = parse_double(key, value);
    } else if (key == "crash") {
      plan.post_train_crash = parse_double(key, value);
    } else if (key == "straggle") {
      plan.straggler_prob = parse_double(key, value);
    } else if (key == "delay") {
      plan.straggler_delay = parse_double(key, value);
    } else if (key == "comm") {
      plan.transient_comm_prob = parse_double(key, value);
    } else if (key == "corrupt") {
      plan.corrupt_prob = parse_double(key, value);
    } else if (key == "corrupt_mode") {
      plan.corrupt_mode = value;
    } else if (key == "explode") {
      plan.explode_factor = parse_double(key, value);
    } else if (key == "deadline") {
      plan.round_deadline = parse_double(key, value);
    } else if (key == "retries") {
      const double v = parse_double(key, value);
      if (v < 0.0 || v != std::floor(v)) {
        throw std::invalid_argument(
            "FaultPlan.max_retries must be a non-negative integer, got " +
            value);
      }
      plan.max_retries = static_cast<std::size_t>(v);
    } else if (key == "backoff_base") {
      plan.backoff_base = parse_double(key, value);
    } else if (key == "backoff_mult") {
      plan.backoff_mult = parse_double(key, value);
    } else if (key == "over_select") {
      plan.over_select_fraction = parse_double(key, value);
    } else if (key == "max_norm") {
      plan.max_update_norm = parse_double(key, value);
    } else if (key == "only") {
      std::stringstream ids(value);
      std::string id;
      while (std::getline(ids, id, ':')) {
        if (id.empty()) continue;
        plan.only_clients.push_back(
            static_cast<std::size_t>(parse_double(key, id)));
      }
      std::sort(plan.only_clients.begin(), plan.only_clients.end());
    } else {
      throw std::invalid_argument(
          "FaultPlan: unknown key '" + key +
          "' (valid: dropout, crash, straggle, delay, comm, corrupt, "
          "corrupt_mode, explode, deadline, retries, backoff_base, "
          "backoff_mult, over_select, max_norm, only)");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  const auto field = [&](const char* key, double v, double def) {
    if (v != def) os << (os.tellp() > 0 ? " " : "") << key << "=" << v;
  };
  field("dropout", pre_round_dropout, 0.0);
  field("crash", post_train_crash, 0.0);
  field("straggle", straggler_prob, 0.0);
  field("delay", straggler_delay, 3.0);
  field("comm", transient_comm_prob, 0.0);
  field("corrupt", corrupt_prob, 0.0);
  if (corrupt_mode != "mix") {
    os << (os.tellp() > 0 ? " " : "") << "corrupt_mode=" << corrupt_mode;
  }
  field("deadline", round_deadline, 0.0);
  field("retries", static_cast<double>(max_retries), 2.0);
  field("backoff_base", backoff_base, 0.25);
  field("backoff_mult", backoff_mult, 2.0);
  field("over_select", over_select_fraction, 0.0);
  field("max_norm", max_update_norm, 0.0);
  if (!only_clients.empty()) {
    os << (os.tellp() > 0 ? " " : "") << "only=";
    for (std::size_t i = 0; i < only_clients.size(); ++i) {
      os << (i ? ":" : "") << only_clients[i];
    }
  }
  if (os.tellp() == 0) return enabled ? "enabled (all-zero plan)" : "off";
  return os.str();
}

FaultEngine::FaultEngine(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {
  plan_.validate();
}

bool FaultEngine::applies_to(std::size_t client) const {
  if (plan_.only_clients.empty()) return true;
  return std::binary_search(plan_.only_clients.begin(),
                            plan_.only_clients.end(), client);
}

FaultDecision FaultEngine::decide(std::size_t client,
                                  std::size_t round) const {
  FaultDecision d;
  if (!active() || !applies_to(client)) return d;
  // One private stream per (client, round); every probability is resolved
  // in a fixed order so adding a consumer cannot reshuffle earlier draws.
  util::Rng rng = util::Rng(seed_).split(kDecisionSalt +
                                         client * kClientStride + round);
  d.drop_pre_round = rng.uniform() < plan_.pre_round_dropout;
  d.crash_post_train = rng.uniform() < plan_.post_train_crash;
  if (rng.uniform() < plan_.straggler_prob) {
    d.straggler = true;
    d.delay_factor = plan_.straggler_delay <= 1.0
                         ? 1.0
                         : rng.uniform(1.0, plan_.straggler_delay);
  }
  if (rng.uniform() < plan_.corrupt_prob) {
    if (plan_.corrupt_mode == "nan") {
      d.corrupt = CorruptionKind::kNan;
    } else if (plan_.corrupt_mode == "inf") {
      d.corrupt = CorruptionKind::kInf;
    } else if (plan_.corrupt_mode == "explode") {
      d.corrupt = CorruptionKind::kExplode;
    } else if (plan_.corrupt_mode == "bitflip") {
      d.corrupt = CorruptionKind::kBitFlip;
    } else {  // mix
      static constexpr CorruptionKind kinds[] = {
          CorruptionKind::kNan, CorruptionKind::kInf,
          CorruptionKind::kExplode, CorruptionKind::kBitFlip};
      d.corrupt = kinds[rng.randint(0, 4)];
    }
  }
  if (plan_.transient_comm_prob > 0.0) {
    const std::size_t cap = plan_.max_retries + 1;
    while (d.transient_failures < cap &&
           rng.uniform() < plan_.transient_comm_prob) {
      ++d.transient_failures;
    }
  }
  return d;
}

void FaultEngine::corrupt_update(std::vector<float>& params,
                                 std::size_t client, std::size_t round,
                                 CorruptionKind kind) const {
  if (kind == CorruptionKind::kNone || params.empty()) return;
  OBS_JOURNAL(round, client, kCorrupt, static_cast<std::uint64_t>(kind));
  util::Rng rng = util::Rng(seed_).split(kCorruptSalt +
                                         client * kClientStride + round);
  const auto n = static_cast<std::int64_t>(params.size());
  switch (kind) {
    case CorruptionKind::kNan:
      for (int i = 0; i < 8; ++i) {
        params[static_cast<std::size_t>(rng.randint(0, n))] =
            std::numeric_limits<float>::quiet_NaN();
      }
      break;
    case CorruptionKind::kInf:
      for (int i = 0; i < 8; ++i) {
        params[static_cast<std::size_t>(rng.randint(0, n))] =
            (i % 2 == 0) ? std::numeric_limits<float>::infinity()
                         : -std::numeric_limits<float>::infinity();
      }
      break;
    case CorruptionKind::kExplode: {
      const auto f = static_cast<float>(plan_.explode_factor);
      for (float& v : params) v *= f;
      break;
    }
    case CorruptionKind::kBitFlip:
      for (int i = 0; i < 3; ++i) {
        float& v = params[static_cast<std::size_t>(rng.randint(0, n))];
        std::uint32_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        bits ^= 1u << static_cast<std::uint32_t>(rng.randint(0, 31));
        std::memcpy(&v, &bits, sizeof(bits));
      }
      break;
    case CorruptionKind::kNone:
      break;
  }
}

void FaultEngine::corrupt_wire(std::vector<std::uint8_t>& bytes,
                               std::size_t client, std::size_t round) const {
  if (bytes.empty()) return;
  OBS_JOURNAL(round, client, kCorrupt,
              static_cast<std::uint64_t>(CorruptionKind::kBitFlip));
  util::Rng rng = util::Rng(seed_).split(kCorruptSalt +
                                         client * kClientStride + round);
  const auto n = static_cast<std::int64_t>(bytes.size());
  for (int i = 0; i < 3; ++i) {
    std::uint8_t& b = bytes[static_cast<std::size_t>(rng.randint(0, n))];
    b = static_cast<std::uint8_t>(
        b ^ (1u << static_cast<std::uint32_t>(rng.randint(0, 8))));
  }
}

const char* UpdateValidator::check(const std::vector<float>& params) const {
  double sumsq = 0.0;
  for (const float v : params) {
    if (!std::isfinite(v)) return "non_finite";
    sumsq += static_cast<double>(v) * v;
  }
  if (max_norm_ > 0.0 && std::sqrt(sumsq) > max_norm_) return "norm_bound";
  return nullptr;
}

}  // namespace fedclust::fl
