#include "fl/pacfl.h"

#include <limits>
#include <stdexcept>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "fl/cluster_common.h"
#include "linalg/principal_angles.h"
#include "linalg/svd.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedclust::fl {

Pacfl::Pacfl(Federation& fed) : FlAlgorithm(fed) {}

tensor::Tensor Pacfl::subspace_of(const data::Dataset& ds) const {
  const std::size_t p = fed_.cfg().algo.pacfl_p;
  const std::size_t d = ds.image_size();

  // Concatenate top-p principal vectors of each present class, then
  // orthonormalize the union into one basis.
  std::vector<tensor::Tensor> pieces;
  std::size_t total_cols = 0;
  for (const auto cls : ds.present_labels()) {
    const auto x = ds.class_matrix(cls, /*max_samples=*/64);
    if (x.dim(1) == 0) continue;
    auto u = linalg::truncated_left_singular(x, p);
    total_cols += u.dim(1);
    pieces.push_back(std::move(u));
  }
  tensor::Tensor basis({d, total_cols});
  std::size_t col = 0;
  for (const auto& u : pieces) {
    for (std::size_t j = 0; j < u.dim(1); ++j, ++col) {
      for (std::size_t i = 0; i < d; ++i) {
        basis[i * total_cols + col] = u[i * u.dim(1) + j];
      }
    }
  }
  return linalg::orthonormalize_columns(basis);
}

void Pacfl::setup() {
  const std::size_t n = fed_.n_clients();

  // One-shot subspace exchange: each client uploads its basis. The bases
  // are retained for newcomer matching. The per-client SVDs are independent
  // (no shared workspace involved), so they fan out directly; uploads are
  // accounted afterwards in client order.
  bases_.assign(n, tensor::Tensor());
  {
    OBS_SPAN("pacfl.subspace_exchange");
    util::parallel_for(0, n, [&](std::size_t c) {
      OBS_SPAN_ARG("client.subspace", c);
      bases_[c] = subspace_of(fed_.client(c)->train_data());
    });
  }
  // Each basis travels as a subspace envelope; the server clusters on the
  // wire-decoded copies (bit-exact for raw_f32).
  for (std::size_t c = 0; c < n; ++c) {
    bases_[c].vec() = fed_.upload_payload(wire::MessageKind::kSubspace,
                                          bases_[c].vec(), c, 0);
  }

  OBS_SPAN("pacfl.cluster");
  const auto dist = clustering::distance_matrix(
      n, [&](std::size_t i, std::size_t j) {
        return linalg::principal_angle_distance_deg(bases_[i], bases_[j]);
      });
  const auto dendro =
      clustering::agglomerative(dist, clustering::Linkage::kAverage);
  if (fed_.cfg().algo.pacfl_k > 0) {
    assignment_ = clustering::cut_to_k(dendro, fed_.cfg().algo.pacfl_k);
  } else {
    float threshold = fed_.cfg().algo.pacfl_threshold_deg;
    if (threshold < 0.0f) threshold = clustering::gap_threshold(dendro);
    assignment_ = clustering::cut_by_threshold(dendro, threshold);
  }

  const std::size_t k = clustering::num_clusters(assignment_);
  cluster_models_.assign(k, fed_.init_params());
  FC_LOG_DEBUG << "PACFL formed " << k << " clusters";
}

void Pacfl::round(std::size_t r) {
  cluster_fedavg_round(fed_, r, assignment_, cluster_models_);
}

double Pacfl::evaluate_all() {
  return cluster_average_accuracy(fed_, assignment_, cluster_models_);
}

std::size_t Pacfl::assign_newcomer(const SimClient& newcomer) {
  if (bases_.empty()) {
    throw std::logic_error("Pacfl::assign_newcomer before setup");
  }
  tensor::Tensor basis = subspace_of(newcomer.train_data());
  basis.vec() = fed_.upload_payload(wire::MessageKind::kSubspace, basis.vec(),
                                    bases_.size(), 0);
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_client = 0;
  for (std::size_t c = 0; c < bases_.size(); ++c) {
    const float d = linalg::principal_angle_distance_deg(basis, bases_[c]);
    if (d < best) {
      best = d;
      best_client = c;
    }
  }
  return assignment_[best_client];
}

void Pacfl::save_state(util::BinaryWriter& w) const {
  write_index_vec(w, assignment_);
  write_nested_f32(w, cluster_models_);
  w.write_u64(bases_.size());
  for (const tensor::Tensor& b : bases_) write_tensor(w, b);
}

void Pacfl::load_state(util::BinaryReader& r) {
  assignment_ = read_index_vec(r);
  cluster_models_ = read_nested_f32(r);
  const std::uint64_t n = r.read_u64();
  bases_.clear();
  bases_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) bases_.push_back(read_tensor(r));
}

}  // namespace fedclust::fl
