#include "fl/pacfl.h"

#include <limits>
#include <stdexcept>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "fl/cluster_common.h"
#include "fl/landmark.h"
#include "linalg/principal_angles.h"
#include "linalg/svd.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedclust::fl {

Pacfl::Pacfl(Federation& fed) : FlAlgorithm(fed) {}

tensor::Tensor Pacfl::subspace_of(const data::Dataset& ds) const {
  const std::size_t p = fed_.cfg().algo.pacfl_p;
  const std::size_t d = ds.image_size();

  // Concatenate top-p principal vectors of each present class, then
  // orthonormalize the union into one basis.
  std::vector<tensor::Tensor> pieces;
  std::size_t total_cols = 0;
  for (const auto cls : ds.present_labels()) {
    const auto x = ds.class_matrix(cls, /*max_samples=*/64);
    if (x.dim(1) == 0) continue;
    auto u = linalg::truncated_left_singular(x, p);
    total_cols += u.dim(1);
    pieces.push_back(std::move(u));
  }
  tensor::Tensor basis({d, total_cols});
  std::size_t col = 0;
  for (const auto& u : pieces) {
    for (std::size_t j = 0; j < u.dim(1); ++j, ++col) {
      for (std::size_t i = 0; i < d; ++i) {
        basis[i * total_cols + col] = u[i * u.dim(1) + j];
      }
    }
  }
  return linalg::orthonormalize_columns(basis);
}

void Pacfl::setup() {
  const std::size_t n = fed_.n_clients();
  const std::size_t L = effective_landmarks(n, fed_.cfg().landmarks);

  // One-shot subspace exchange. The per-client SVDs are independent (no
  // shared workspace involved), so they fan out directly; uploads are
  // accounted afterwards in id order. Each basis travels as a subspace
  // envelope; the server clusters on the wire-decoded copies (bit-exact
  // for raw_f32). Setup stays fault-free in both modes (round key 0).
  const auto subspace_batch = [&](const std::vector<std::size_t>& ids) {
    std::vector<tensor::Tensor> out(ids.size());
    util::parallel_for(0, ids.size(), [&](std::size_t i) {
      OBS_SPAN_ARG("client.subspace", ids[i]);
      out[i] = subspace_of(fed_.client(ids[i])->train_data());
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
      out[i].vec() = fed_.upload_payload(wire::MessageKind::kSubspace,
                                         out[i].vec(), ids[i], 0);
    }
    return out;
  };

  if (L == 0) {
    // Exact path: every basis resident (retained for newcomer matching),
    // full O(N²) principal-angle matrix.
    {
      OBS_SPAN("pacfl.subspace_exchange");
      std::vector<std::size_t> everyone(n);
      for (std::size_t c = 0; c < n; ++c) everyone[c] = c;
      bases_ = subspace_batch(everyone);
    }

    OBS_SPAN("pacfl.cluster");
    const auto dist = clustering::distance_matrix(
        n, [&](std::size_t i, std::size_t j) {
          return linalg::principal_angle_distance_deg(bases_[i], bases_[j]);
        });
    const auto dendro =
        clustering::agglomerative(dist, clustering::Linkage::kAverage);
    if (fed_.cfg().algo.pacfl_k > 0) {
      assignment_ = clustering::cut_to_k(dendro, fed_.cfg().algo.pacfl_k);
    } else {
      float threshold = fed_.cfg().algo.pacfl_threshold_deg;
      if (threshold < 0.0f) threshold = clustering::gap_threshold(dendro);
      assignment_ = clustering::cut_by_threshold(dendro, threshold);
    }
    landmark_ids_.clear();
  } else {
    // Landmark sketch (fl/landmark.h): principal-angle dendrogram on L
    // landmark bases, everyone else streamed through nearest-landmark
    // assignment per cache-sized batch. Only the landmark bases stay
    // resident — they double as the newcomer-matching set.
    landmark_ids_ = sample_landmarks(fed_.cfg().seed, n, L);
    const std::size_t batch = fed_.cfg().client_cache > 0
                                  ? fed_.cfg().client_cache
                                  : 256;  // the client store's default
    LandmarkCutPolicy cut;
    cut.linkage = clustering::Linkage::kAverage;
    cut.k = fed_.cfg().algo.pacfl_k;
    cut.threshold = fed_.cfg().algo.pacfl_threshold_deg;
    LandmarkCluster<tensor::Tensor> sketch(
        n, landmark_ids_, batch, subspace_batch,
        [](const tensor::Tensor& a, const tensor::Tensor& b) {
          return linalg::principal_angle_distance_deg(a, b);
        });
    LandmarkResult res = sketch.run(cut);
    assignment_ = std::move(res.assignment);
    bases_ = sketch.landmark_features();
  }

  const std::size_t k = clustering::num_clusters(assignment_);
  cluster_models_.assign(k, fed_.init_params());

  // Journal the one-shot verdict for the whole population (round 0) so
  // run reports see the full partition (fedclust_report §Clustering).
  if (obs::EventJournal::enabled()) {
    for (std::size_t c = 0; c < n; ++c) {
      OBS_JOURNAL(0, c, kCluster, assignment_[c]);
    }
  }
  FC_LOG_DEBUG << "PACFL formed " << k << " clusters"
               << (L > 0 ? " (landmark sketch)" : "");
}

void Pacfl::round(std::size_t r) {
  cluster_fedavg_round(fed_, r, assignment_, cluster_models_);
}

double Pacfl::evaluate_all() {
  return cluster_average_accuracy(fed_, assignment_, cluster_models_);
}

std::size_t Pacfl::assign_newcomer(const SimClient& newcomer) {
  if (bases_.empty()) {
    throw std::logic_error("Pacfl::assign_newcomer before setup");
  }
  tensor::Tensor basis = subspace_of(newcomer.train_data());
  basis.vec() = fed_.upload_payload(wire::MessageKind::kSubspace, basis.vec(),
                                    assignment_.size(), 0);
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t c = 0; c < bases_.size(); ++c) {
    const float d = linalg::principal_angle_distance_deg(basis, bases_[c]);
    if (d < best) {
      best = d;
      best_idx = c;
    }
  }
  // In landmark mode bases_[i] belongs to landmark_ids_[i]; in exact mode
  // it belongs to client i.
  const std::size_t best_client =
      landmark_ids_.empty() ? best_idx : landmark_ids_[best_idx];
  return assignment_[best_client];
}

void Pacfl::save_state(util::BinaryWriter& w) const {
  write_index_vec(w, assignment_);
  write_nested_f32(w, cluster_models_);
  w.write_u64(bases_.size());
  for (const tensor::Tensor& b : bases_) write_tensor(w, b);
  write_index_vec(w, landmark_ids_);
}

void Pacfl::load_state(util::BinaryReader& r) {
  assignment_ = read_index_vec(r);
  cluster_models_ = read_nested_f32(r);
  const std::uint64_t n = r.read_u64();
  bases_.clear();
  bases_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) bases_.push_back(read_tensor(r));
  landmark_ids_ = read_index_vec(r);
  validate_landmark_ids(landmark_ids_, assignment_.size(), "PACFL snapshot");
  if (!landmark_ids_.empty() && bases_.size() != landmark_ids_.size()) {
    throw std::runtime_error(
        "PACFL snapshot: landmark ids disagree with stored bases");
  }
}

}  // namespace fedclust::fl
