#pragma once

// Per-round experiment traces. One Trace per (algorithm, dataset, setting)
// run; Tables 1–3 read final_accuracy(), Table 4 rounds_to_accuracy(),
// Table 5 mb_to_accuracy(), and Fig. 3 the raw per-round series.

#include <cstdint>
#include <string>
#include <vector>

namespace fedclust::fl {

struct RoundRecord {
  std::size_t round = 0;
  // Mean top-1 accuracy of every client's personalized/cluster/global model
  // on its own local test set — the paper's headline metric.
  double avg_local_test_acc = 0.0;
  // Cumulative communication at the end of this round.
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::size_t n_clusters = 1;
};

struct Trace {
  std::string method;
  std::string dataset;
  std::vector<RoundRecord> records;

  // Accuracy after the last round (0 if the trace is empty).
  double final_accuracy() const;
  // First round index (1-based, as the paper counts) whose accuracy reaches
  // target; -1 if never reached.
  int rounds_to_accuracy(double target) const;
  // Cumulative Mb (megabits) at that round; -1 if never reached.
  double mb_to_accuracy(double target) const;
  // Total Mb at the end of the run.
  double total_mb() const;
  std::size_t final_clusters() const;

  void save_csv(const std::string& path) const;
};

}  // namespace fedclust::fl
