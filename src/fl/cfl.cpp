#include "fl/cfl.h"

#include <cmath>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "fl/cluster_common.h"
#include "fl/parallel_round.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace fedclust::fl {

Cfl::Cfl(Federation& fed) : FlAlgorithm(fed) {}

void Cfl::setup() {
  assignment_.assign(fed_.n_clients(), 0);
  cluster_models_ = {fed_.init_params()};
}

void Cfl::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  // Client-parallel training; assignment_ and cluster_models_ are
  // round-constant during the fan-out.
  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &cluster_models_[assignment_[c]];
        job.opts = fed_.cfg().local;
        job.rng = fed_.train_rng(c, r);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = r;
        return job;
      });

  // Group the delivered updates per cluster in client-index order, keeping
  // the raw updates around for the split criterion; faulted updates enter
  // neither the aggregate nor the congruence norms.
  std::vector<std::vector<const std::vector<float>*>> updates(
      cluster_models_.size());
  std::vector<std::vector<double>> weights(cluster_models_.size());
  std::vector<std::size_t> sampled_members(cluster_models_.size(), 0);
  for (const auto& res : results) {
    const std::size_t k = assignment_[res.client];
    ++sampled_members[k];
    if (!res.delivered) continue;
    updates[k].push_back(&res.params);
    weights[k].push_back(res.weight);
  }

  std::vector<std::size_t> to_split;
  for (std::size_t k = 0; k < cluster_models_.size(); ++k) {
    if (updates[k].empty()) {
      // Carried forward unchanged; count the rounds where faults (not
      // sampling) hollowed the cluster out.
      if (sampled_members[k] > 0) {
        OBS_COUNTER_ADD("fault.empty_cluster_rounds", 1);
      }
      continue;
    }

    // Update norms relative to the aggregate: Sattler's congruence check.
    std::vector<std::vector<float>> deltas;
    for (const auto* w : updates[k]) {
      std::vector<float> d(p);
      for (std::size_t j = 0; j < p; ++j) {
        d[j] = (*w)[j] - cluster_models_[k][j];
      }
      deltas.push_back(std::move(d));
    }
    std::vector<float> mean_delta(p, 0.0f);
    for (const auto& d : deltas) {
      tensor::axpy(1.0f / static_cast<float>(deltas.size()), d, mean_delta);
    }
    float max_norm = 0.0f;
    float avg_norm = 0.0f;
    for (const auto& d : deltas) {
      const float n = tensor::nrm2(d);
      max_norm = std::max(max_norm, n);
      avg_norm += n / static_cast<float>(deltas.size());
    }
    const float mean_norm = tensor::nrm2(mean_delta);

    // Aggregate as usual.
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    for (std::size_t i = 0; i < updates[k].size(); ++i) {
      entries.emplace_back(updates[k][i], weights[k][i]);
    }
    cluster_models_[k] = weighted_average(entries);

    // Congruence criterion (norms normalized by the average client update
    // so the thresholds are scale-free): near-stationary mean with large
    // individual updates means the cluster hosts incongruent populations.
    const float eps1 = fed_.cfg().algo.cfl_eps1;
    const float eps2 = fed_.cfg().algo.cfl_eps2;
    std::size_t members = 0;
    for (const std::size_t a : assignment_) members += a == k;
    if (avg_norm > 0.0f && deltas.size() >= 2 && members >= 4 &&
        mean_norm < eps1 * avg_norm && max_norm > eps2 * avg_norm) {
      to_split.push_back(k);
    }
  }

  for (const std::size_t k : to_split) split_cluster(k, r);
}

void Cfl::split_cluster(std::size_t k, std::size_t round) {
  // Full participation of cluster k: every member computes an update from
  // the cluster model so the server can bipartition all of them.
  std::vector<std::size_t> members;
  for (std::size_t c = 0; c < fed_.n_clients(); ++c) {
    if (assignment_[c] == k) members.push_back(c);
  }
  if (members.size() < 2) return;

  const std::size_t p = fed_.model_size();
  ParallelRoundRunner runner(fed_);
  auto results = runner.train_clients(
      members, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &cluster_models_[k];
        job.opts = fed_.cfg().local;
        job.rng = fed_.train_rng(c, 0xCF1000 + round);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = 0xCF1000 + round;  // out-of-band fault-schedule key
        return job;
      });
  // Members lost to faults during the split sweep contribute no delta; a
  // bipartition needs at least two survivors, otherwise the split is
  // abandoned and retried when the criterion next fires.
  std::vector<std::size_t> surviving;
  std::vector<std::vector<float>> deltas;
  deltas.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& res = results[i];
    if (!res.delivered) continue;
    auto w = std::move(res.params);
    for (std::size_t j = 0; j < p; ++j) w[j] -= cluster_models_[k][j];
    deltas.push_back(std::move(w));
    surviving.push_back(members[i]);
  }
  if (deltas.size() < 2) return;

  // Complete-linkage bipartition of 1 - cos(delta_i, delta_j), the optimal
  // bipartition heuristic from Sattler's reference implementation.
  const auto dist = clustering::cosine_distance_matrix(deltas);
  const auto halves = clustering::cut_to_k(
      clustering::agglomerative(dist, clustering::Linkage::kComplete), 2);

  const std::size_t new_k = cluster_models_.size();
  cluster_models_.push_back(cluster_models_[k]);  // both halves inherit
  for (std::size_t i = 0; i < surviving.size(); ++i) {
    if (halves[i] == 1) assignment_[surviving[i]] = new_k;
  }
  FC_LOG_DEBUG << "CFL split cluster " << k << " (" << surviving.size()
               << " of " << members.size() << " members) at round " << round;
}

double Cfl::evaluate_all() {
  return cluster_average_accuracy(fed_, assignment_, cluster_models_);
}

void Cfl::save_state(util::BinaryWriter& w) const {
  write_index_vec(w, assignment_);
  write_nested_f32(w, cluster_models_);
}

void Cfl::load_state(util::BinaryReader& r) {
  assignment_ = read_index_vec(r);
  cluster_models_ = read_nested_f32(r);
}

}  // namespace fedclust::fl
