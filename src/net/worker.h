#pragma once

// net::WorkerLoop — the client side of the socket transport.
//
// A worker process rebuilds the identical Federation from the shared CLI
// config (synthetic data and client populations are pure functions of the
// seed), connects to the server, and serves TrainReq messages: load the
// shipped start parameters into the workspace, reconstruct the pre-split
// RNG stream from its serialized state, run SimClient::train, reply with
// the resulting parameters. All stochastic *decisions* stay on the server;
// the worker only replays pure computation, which is what makes any
// assignment of calls to workers bit-identical.
//
// Crash-restart: after every served call the worker persists a tiny state
// file (fingerprint, last round, calls served). A worker restarted after
// kill -9 reloads it, reconnects mid-campaign, and announces the resume
// point in its hello — the server journals the restart and immediately
// hands it requeued calls. The model state itself needs no recovery: every
// TrainReq is self-contained.

#include <cstdint>
#include <string>
#include <vector>

#include "net/backoff.h"

namespace fedclust::fl {
class Federation;
}

namespace fedclust::net {

struct WorkerOptions {
  std::string connect;            // server address spec
  int io_timeout_ms = 30000;      // recv timeout; idle gaps send heartbeats
  int heartbeat_ms = 1000;        // idle heartbeat period
  std::string state_path;         // crash-restart state file ("" = off)
  int connect_attempts = 10;      // initial / re-connect retry budget
  BackoffPolicy backoff;          // connect retry schedule
  std::uint64_t seed = 0;
  std::uint64_t fingerprint = 0;
};

// Durable worker progress, persisted after every served call.
struct WorkerState {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t last_round = 0;
  std::uint64_t calls_served = 0;
};

// Loads/saves the state file (atomic tmp+rename, crc-checked). load returns
// false on missing file, damage, or config mismatch — callers start fresh.
bool load_worker_state(const std::string& path, std::uint64_t fingerprint,
                       std::uint64_t seed, WorkerState& out);
void save_worker_state(const std::string& path, const WorkerState& st);

class WorkerLoop {
 public:
  WorkerLoop(fl::Federation& fed, WorkerOptions opts);

  // Serves until the server sends kShutdown (returns 0), the connection is
  // lost beyond the reconnect budget (returns 1), or a shutdown signal
  // arrives (returns 0 after persisting state).
  int run();

 private:
  // Connect + hello/welcome handshake; returns the connected fd or -1.
  int connect_and_handshake();

  // Serves one TrainReq; false when the reply could not be sent.
  bool serve(int fd, const std::vector<std::uint8_t>& body);

  fl::Federation& fed_;
  WorkerOptions opts_;
  WorkerState state_;
  std::uint32_t worker_id_ = 0;
};

}  // namespace fedclust::net
