#include "net/worker.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "fl/federation.h"
#include "fl/wire.h"
#include "net/message.h"
#include "net/socket.h"
#include "net/stream.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/signal.h"
#include "util/timer.h"

namespace fedclust::net {

namespace {

constexpr std::uint32_t kStateMagic = 0xFC3057A7u;
constexpr std::uint32_t kStateVersion = 1;

}  // namespace

bool load_worker_state(const std::string& path, std::uint64_t fingerprint,
                       std::uint64_t seed, WorkerState& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  constexpr std::size_t kLen = 4 + 4 + 8 + 8 + 8 + 8 + 4;
  if (bytes.size() != kLen) return false;
  const std::uint8_t* p = bytes.data();
  if (util::get_u32_le(p) != kStateMagic) return false;
  if (util::get_u32_le(p + 4) != kStateVersion) return false;
  if (util::crc32c(p, kLen - 4) != util::get_u32_le(p + kLen - 4)) {
    return false;
  }
  WorkerState st;
  st.fingerprint = util::get_u64_le(p + 8);
  st.seed = util::get_u64_le(p + 16);
  st.last_round = util::get_u64_le(p + 24);
  st.calls_served = util::get_u64_le(p + 32);
  // A state file from a different experiment must not seed a resume.
  if (st.fingerprint != fingerprint || st.seed != seed) return false;
  out = st;
  return true;
}

void save_worker_state(const std::string& path, const WorkerState& st) {
  std::vector<std::uint8_t> bytes;
  util::put_u32_le(bytes, kStateMagic);
  util::put_u32_le(bytes, kStateVersion);
  util::put_u64_le(bytes, st.fingerprint);
  util::put_u64_le(bytes, st.seed);
  util::put_u64_le(bytes, st.last_round);
  util::put_u64_le(bytes, st.calls_served);
  util::put_u32_le(bytes, util::crc32c(bytes.data(), bytes.size()));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os) {
      FC_LOG_WARN << "worker: failed writing state file " << tmp;
      return;
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

WorkerLoop::WorkerLoop(fl::Federation& fed, WorkerOptions opts)
    : fed_(fed), opts_(std::move(opts)) {
  state_.fingerprint = opts_.fingerprint;
  state_.seed = opts_.seed;
}

int WorkerLoop::connect_and_handshake() {
  const Address addr = Address::parse(opts_.connect);
  for (int attempt = 0; attempt < opts_.connect_attempts; ++attempt) {
    if (util::shutdown_requested()) return -1;
    if (attempt > 0) {
      const double d = opts_.backoff.delay_seconds(
          opts_.seed, /*client=*/0, /*round=*/0,
          static_cast<std::uint64_t>(attempt));
      std::this_thread::sleep_for(std::chrono::duration<double>(d));
    }
    const int fd = connect_to(addr);
    if (fd < 0) continue;
    set_recv_timeout(fd, opts_.io_timeout_ms);
    set_send_timeout(fd, opts_.io_timeout_ms);

    HelloMsg hello;
    hello.proto = kProtocolVersion;
    hello.fingerprint = opts_.fingerprint;
    hello.seed = opts_.seed;
    hello.resume_round = state_.last_round;
    hello.calls_served = state_.calls_served;

    FdStream s(fd);
    FrameReader reader;
    std::vector<std::uint8_t> body;
    FrameStatus fst = FrameStatus::kNeedMore;
    WelcomeMsg welcome;
    if (write_frame(s, encode_hello(hello)) != IoStatus::kOk ||
        read_frame(s, reader, body, fst) != IoStatus::kOk ||
        !decode_welcome(body, welcome)) {
      close_fd(fd);
      continue;
    }
    worker_id_ = welcome.worker_id;
    FC_LOG_INFO << "worker " << worker_id_ << ": connected to "
                << addr.describe() << " (server at round "
                << welcome.next_round << ", resume from round "
                << state_.last_round << ", served " << state_.calls_served
                << ")";
    return fd;
  }
  return -1;
}

bool WorkerLoop::serve(int fd, const std::vector<std::uint8_t>& body) {
  using fl::wire::DecodeStatus;
  FdStream s(fd);

  TrainReqMsg req;
  if (!decode_train_req(body, req)) {
    ErrorMsg err;
    err.code = 0;
    err.reason = "train_req: malformed body";
    write_frame(s, encode_error(err));
    return true;
  }

  // Second integrity stage: each embedded parameter vector carries its own
  // wire-envelope CRC, verified before a single float is trusted.
  fl::wire::Envelope start, prox, offset;
  DecodeStatus ds = fl::wire::try_decode(req.start_env.data(),
                                         req.start_env.size(), start);
  if (ds == DecodeStatus::kOk && req.prox_env) {
    ds = fl::wire::try_decode(req.prox_env->data(), req.prox_env->size(),
                              prox);
  }
  if (ds == DecodeStatus::kOk && req.offset_env) {
    ds = fl::wire::try_decode(req.offset_env->data(), req.offset_env->size(),
                              offset);
  }
  if (ds != DecodeStatus::kOk) {
    ErrorMsg err;
    err.code = static_cast<std::uint32_t>(ds);
    err.reason = std::string("train_req: envelope rejected (") +
                 fl::wire::decode_status_name(ds) + ")";
    write_frame(s, encode_error(err));
    return true;
  }

  nn::Model& ws = fed_.workspace();
  ws.set_flat_params(start.payload);
  util::Rng rng = util::Rng::from_state(req.rng);
  const std::int64_t t0 = util::process_elapsed_micros();
  const float loss = fed_.client(static_cast<std::size_t>(req.client))
                         ->train(ws, req.opts, rng,
                                 req.prox_env ? &prox.payload : nullptr,
                                 req.offset_env ? &offset.payload : nullptr);
  const std::int64_t t1 = util::process_elapsed_micros();

  TrainRespMsg resp;
  resp.client = req.client;
  resp.round = req.round;
  resp.ok = true;
  resp.loss = loss;
  resp.train_us = static_cast<std::uint64_t>(t1 - t0);
  resp.params_env = fl::wire::encode(fl::wire::MessageKind::kUpdatePush,
                                     fl::wire::CodecId::kRawF32, req.client,
                                     req.round, ws.flat_params());
  if (write_frame(s, encode_train_resp(resp)) != IoStatus::kOk) return false;

  OBS_COUNTER_ADD("net.calls_served", 1);
  state_.last_round = req.round;
  state_.calls_served += 1;
  if (!opts_.state_path.empty()) save_worker_state(opts_.state_path, state_);
  return true;
}

int WorkerLoop::run() {
  if (!opts_.state_path.empty() &&
      load_worker_state(opts_.state_path, opts_.fingerprint, opts_.seed,
                        state_)) {
    FC_LOG_INFO << "worker: resuming from state file (round "
                << state_.last_round << ", served " << state_.calls_served
                << ")";
  }

  int fd = connect_and_handshake();
  if (fd < 0) {
    FC_LOG_ERROR << "worker: could not reach server at " << opts_.connect;
    return 1;
  }

  FrameReader reader;
  std::vector<std::uint8_t> body;
  double last_beat = util::process_elapsed_seconds();
  while (true) {
    if (util::shutdown_requested()) {
      FC_LOG_INFO << "worker " << worker_id_ << ": shutdown requested";
      if (!opts_.state_path.empty()) {
        save_worker_state(opts_.state_path, state_);
      }
      close_fd(fd);
      return 0;
    }

    bool readable = false;
    try {
      readable = wait_readable(fd, opts_.heartbeat_ms);
    } catch (const std::exception&) {
      readable = false;
    }
    if (!readable) {
      const double now = util::process_elapsed_seconds();
      if ((now - last_beat) * 1000.0 >= opts_.heartbeat_ms) {
        HeartbeatMsg hb;
        hb.worker_id = worker_id_;
        hb.calls_served = state_.calls_served;
        FdStream s(fd);
        write_frame(s, encode_heartbeat(hb));
        last_beat = now;
      }
      continue;
    }

    std::uint8_t chunk[16 * 1024];
    std::size_t got = 0;
    FdStream s(fd);
    const IoStatus ist = s.read_some(chunk, sizeof(chunk), got);
    if (ist == IoStatus::kTimeout) continue;
    if (ist != IoStatus::kOk) {
      FC_LOG_WARN << "worker " << worker_id_
                  << ": connection lost; reconnecting";
      close_fd(fd);
      fd = connect_and_handshake();
      if (fd < 0) return 1;
      reader = FrameReader();
      continue;
    }
    reader.feed(chunk, got);

    bool conn_dead = false;
    while (!conn_dead) {
      const FrameStatus fst = reader.next(body);
      if (fst == FrameStatus::kNeedMore) break;
      if (fst != FrameStatus::kOk) {
        FC_LOG_WARN << "worker " << worker_id_ << ": frame rejected ("
                    << frame_status_name(fst) << "); reconnecting";
        conn_dead = true;
        break;
      }
      const std::optional<MsgType> type = peek_type(body);
      if (!type) continue;
      if (*type == MsgType::kShutdown) {
        FC_LOG_INFO << "worker " << worker_id_ << ": shutdown from server, "
                    << "served " << state_.calls_served << " call(s)";
        if (!opts_.state_path.empty()) {
          save_worker_state(opts_.state_path, state_);
        }
        close_fd(fd);
        return 0;
      }
      if (*type == MsgType::kTrainReq) {
        if (!serve(fd, body)) {
          conn_dead = true;
          break;
        }
        last_beat = util::process_elapsed_seconds();
      }
      // Anything else (stray welcome/heartbeat) is ignored.
    }
    if (conn_dead) {
      close_fd(fd);
      fd = connect_and_handshake();
      if (fd < 0) return 1;
      reader = FrameReader();
    }
  }
}

}  // namespace fedclust::net
