#include "net/frame.h"

#include "util/serialization.h"

namespace fedclust::net {

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kNeedMore: return "need_more";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kOversize: return "oversize";
    case FrameStatus::kBadCrc: return "bad_crc";
    case FrameStatus::kTruncated: return "truncated";
  }
  return "unknown";
}

std::vector<std::uint8_t> frame_encode(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + body.size());
  util::put_u32_le(out, kFrameMagic);
  util::put_u32_le(out, static_cast<std::uint32_t>(body.size()));
  util::put_u32_le(out, util::crc32c(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned() || n == 0) return;
  // Compact the consumed prefix before growing — the buffer stays bounded
  // by one in-flight frame plus whatever the socket read ahead.
  if (pos_ > 0 && (pos_ >= 4096 || pos_ == buf_.size())) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameStatus FrameReader::next(std::vector<std::uint8_t>& body) {
  if (poisoned()) return error_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return FrameStatus::kNeedMore;
  const std::uint8_t* p = buf_.data() + pos_;
  if (util::get_u32_le(p) != kFrameMagic) {
    return error_ = FrameStatus::kBadMagic;
  }
  const std::uint32_t len = util::get_u32_le(p + 4);
  if (len > kMaxFrameBody) {
    return error_ = FrameStatus::kOversize;
  }
  if (avail < kFrameHeaderSize + len) return FrameStatus::kNeedMore;
  const std::uint32_t want_crc = util::get_u32_le(p + 8);
  if (util::crc32c(p + kFrameHeaderSize, len) != want_crc) {
    return error_ = FrameStatus::kBadCrc;
  }
  body.assign(p + kFrameHeaderSize, p + kFrameHeaderSize + len);
  pos_ += kFrameHeaderSize + len;
  return FrameStatus::kOk;
}

FrameStatus FrameReader::finish() const {
  if (poisoned()) return error_;
  return buffered() > 0 ? FrameStatus::kTruncated : FrameStatus::kOk;
}

}  // namespace fedclust::net
