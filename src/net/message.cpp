#include "net/message.h"

#include <cstring>

#include "util/serialization.h"

namespace fedclust::net {

namespace {

using util::get_f32_le;
using util::get_u16_le;
using util::get_u32_le;
using util::get_u64_le;
using util::put_f32_le;
using util::put_u16_le;
using util::put_u32_le;
using util::put_u64_le;

// Sequential bounds-checked reader over a message body. Any out-of-range
// read trips `ok` and subsequent reads return zeros; callers check ok()
// once at the end (plus done() to reject trailing garbage).
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& body)
      : p_(body.data()), n_(body.size()) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p_[off_ - 1];
  }
  std::uint16_t u16() { return take(2) ? get_u16_le(p_ + off_ - 2) : 0; }
  std::uint32_t u32() { return take(4) ? get_u32_le(p_ + off_ - 4) : 0; }
  std::uint64_t u64() { return take(8) ? get_u64_le(p_ + off_ - 8) : 0; }
  float f32() { return take(4) ? get_f32_le(p_ + off_ - 4) : 0.0f; }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Length-prefixed byte blob (u32 length). Rejects lengths that overrun
  // the remaining body.
  bool blob(std::vector<std::uint8_t>& out) {
    const std::uint32_t len = u32();
    if (!ok_ || len > n_ - off_) {
      ok_ = false;
      return false;
    }
    out.assign(p_ + off_, p_ + off_ + len);
    off_ += len;
    return true;
  }

  bool str(std::string& out) {
    const std::uint32_t len = u32();
    if (!ok_ || len > n_ - off_) {
      ok_ = false;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  bool done() const { return ok_ && off_ == n_; }

 private:
  bool take(std::size_t k) {
    if (!ok_ || k > n_ - off_) {
      ok_ = false;
      return false;
    }
    off_ += k;
    return true;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

void put_f64_le(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64_le(out, bits);
}

void put_blob(std::vector<std::uint8_t>& out,
              const std::vector<std::uint8_t>& blob) {
  put_u32_le(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

void put_rng(std::vector<std::uint8_t>& out, const util::RngState& st) {
  put_u64_le(out, st.seed);
  for (int i = 0; i < 4; ++i) put_u64_le(out, st.s[i]);
  out.push_back(st.has_cached_normal ? 1 : 0);
  put_f64_le(out, st.cached_normal);
}

void get_rng(Cursor& c, util::RngState& st) {
  st.seed = c.u64();
  for (int i = 0; i < 4; ++i) st.s[i] = c.u64();
  st.has_cached_normal = c.u8() != 0;
  st.cached_normal = c.f64();
}

void put_opts(std::vector<std::uint8_t>& out,
              const fl::LocalTrainOptions& o) {
  put_u64_le(out, o.epochs);
  put_u64_le(out, o.batch_size);
  put_f32_le(out, o.lr);
  put_f32_le(out, o.momentum);
  put_f32_le(out, o.weight_decay);
  put_f32_le(out, o.clip_grad_norm);
  put_f32_le(out, o.prox_mu);
}

void get_opts(Cursor& c, fl::LocalTrainOptions& o) {
  o.epochs = static_cast<std::size_t>(c.u64());
  o.batch_size = static_cast<std::size_t>(c.u64());
  o.lr = c.f32();
  o.momentum = c.f32();
  o.weight_decay = c.f32();
  o.clip_grad_norm = c.f32();
  o.prox_mu = c.f32();
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kTrainReq: return "train_req";
    case MsgType::kTrainResp: return "train_resp";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

std::optional<MsgType> peek_type(const std::vector<std::uint8_t>& body) {
  if (body.empty()) return std::nullopt;
  const std::uint8_t t = body[0];
  if (t < static_cast<std::uint8_t>(MsgType::kHello) ||
      t > static_cast<std::uint8_t>(MsgType::kError)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(t);
}

std::vector<std::uint8_t> encode_hello(const HelloMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kHello));
  put_u16_le(b, m.proto);
  put_u64_le(b, m.fingerprint);
  put_u64_le(b, m.seed);
  put_u64_le(b, m.resume_round);
  put_u64_le(b, m.calls_served);
  return b;
}

bool decode_hello(const std::vector<std::uint8_t>& body, HelloMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kHello)) return false;
  out.proto = c.u16();
  out.fingerprint = c.u64();
  out.seed = c.u64();
  out.resume_round = c.u64();
  out.calls_served = c.u64();
  return c.done();
}

std::vector<std::uint8_t> encode_welcome(const WelcomeMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kWelcome));
  put_u32_le(b, m.worker_id);
  put_u64_le(b, m.next_round);
  put_u32_le(b, m.n_workers);
  return b;
}

bool decode_welcome(const std::vector<std::uint8_t>& body, WelcomeMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kWelcome)) return false;
  out.worker_id = c.u32();
  out.next_round = c.u64();
  out.n_workers = c.u32();
  return c.done();
}

std::vector<std::uint8_t> encode_train_req(const TrainReqMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kTrainReq));
  put_u64_le(b, m.client);
  put_u64_le(b, m.round);
  put_opts(b, m.opts);
  put_rng(b, m.rng);
  std::uint8_t flags = 0;
  if (m.prox_env) flags |= 1u;
  if (m.offset_env) flags |= 2u;
  b.push_back(flags);
  put_blob(b, m.start_env);
  if (m.prox_env) put_blob(b, *m.prox_env);
  if (m.offset_env) put_blob(b, *m.offset_env);
  return b;
}

bool decode_train_req(const std::vector<std::uint8_t>& body,
                      TrainReqMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kTrainReq)) return false;
  out.client = c.u64();
  out.round = c.u64();
  get_opts(c, out.opts);
  get_rng(c, out.rng);
  const std::uint8_t flags = c.u8();
  if (flags & ~3u) return false;
  if (!c.blob(out.start_env)) return false;
  out.prox_env.reset();
  out.offset_env.reset();
  if (flags & 1u) {
    std::vector<std::uint8_t> blob;
    if (!c.blob(blob)) return false;
    out.prox_env = std::move(blob);
  }
  if (flags & 2u) {
    std::vector<std::uint8_t> blob;
    if (!c.blob(blob)) return false;
    out.offset_env = std::move(blob);
  }
  return c.done();
}

std::vector<std::uint8_t> encode_train_resp(const TrainRespMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kTrainResp));
  put_u64_le(b, m.client);
  put_u64_le(b, m.round);
  b.push_back(m.ok ? 1 : 0);
  put_f32_le(b, m.loss);
  put_u64_le(b, m.train_us);
  if (m.ok) put_blob(b, m.params_env);
  return b;
}

bool decode_train_resp(const std::vector<std::uint8_t>& body,
                       TrainRespMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kTrainResp)) return false;
  out.client = c.u64();
  out.round = c.u64();
  out.ok = c.u8() != 0;
  out.loss = c.f32();
  out.train_us = c.u64();
  out.params_env.clear();
  if (out.ok && !c.blob(out.params_env)) return false;
  return c.done();
}

std::vector<std::uint8_t> encode_heartbeat(const HeartbeatMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  put_u32_le(b, m.worker_id);
  put_u64_le(b, m.calls_served);
  return b;
}

bool decode_heartbeat(const std::vector<std::uint8_t>& body,
                      HeartbeatMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kHeartbeat)) return false;
  out.worker_id = c.u32();
  out.calls_served = c.u64();
  return c.done();
}

std::vector<std::uint8_t> encode_shutdown() {
  return {static_cast<std::uint8_t>(MsgType::kShutdown)};
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& m) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(MsgType::kError));
  put_u32_le(b, m.code);
  put_u32_le(b, static_cast<std::uint32_t>(m.reason.size()));
  b.insert(b.end(), m.reason.begin(), m.reason.end());
  return b;
}

bool decode_error(const std::vector<std::uint8_t>& body, ErrorMsg& out) {
  Cursor c(body);
  if (c.u8() != static_cast<std::uint8_t>(MsgType::kError)) return false;
  out.code = c.u32();
  if (!c.str(out.reason)) return false;
  return c.done();
}

}  // namespace fedclust::net
