#pragma once

// Deterministic retry-with-exponential-backoff for the socket transport.
//
// The schedule is a pure function of (seed, client, round, attempt) —
// mirroring FaultEngine's purity invariant, so two servers replaying the
// same campaign produce identical retry timing decisions, and a unit test
// can assert the whole schedule without running a socket. The base delay,
// multiplier, and attempt budget come from the fault plan's backoff knobs
// (--fault-spec backoff_base=..,backoff_mult=..,retries=..), the same
// knobs Federation::deliver_update uses for *simulated* comm retries: one
// schedule definition for simulated and real faults.

#include <cstdint>

namespace fedclust::fl {
struct FaultPlan;
}

namespace fedclust::net {

struct BackoffPolicy {
  double base = 0.25;           // seconds before the first retry
  double mult = 2.0;            // delay growth per retry
  std::size_t max_attempts = 3; // total delivery attempts per call
  double cap_seconds = 10.0;    // ceiling on any single delay
  double jitter = 0.1;          // fractional deterministic jitter in [0, j)

  // base/mult/max_attempts lifted from the plan (max_attempts =
  // max_retries + 1: retries beyond the first attempt).
  static BackoffPolicy from_fault_plan(const fl::FaultPlan& plan);

  // Delay after failed attempt `attempt` (1-based) of `client`'s call in
  // `round`. Pure in (seed, client, round, attempt); the jitter fraction
  // is drawn from a salted private RNG stream, so it cannot perturb any
  // simulation stream.
  double delay_seconds(std::uint64_t seed, std::uint64_t client,
                       std::uint64_t round, std::uint64_t attempt) const;
};

}  // namespace fedclust::net
