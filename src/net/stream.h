#pragma once

// Byte-stream abstraction under the framing layer. Sockets implement it
// (net::FdStream); tests implement it with in-memory mocks that inject
// short reads, short writes, and mid-frame EOF without opening a socket.

#include <cstdint>
#include <vector>

#include "net/frame.h"

namespace fedclust::net {

enum class IoStatus : std::uint8_t {
  kOk = 0,
  kEof,      // orderly close
  kTimeout,  // deadline expired before any byte moved
  kError,    // connection-level failure (errno-style)
};

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Reads at most `n` bytes into `buf`; sets `got` to the count (0 only
  // with a non-kOk status). Partial reads are normal.
  virtual IoStatus read_some(std::uint8_t* buf, std::size_t n,
                             std::size_t& got) = 0;

  // Writes at most `n` bytes from `buf`; sets `put` to the count. Partial
  // writes are normal — callers loop via write_all.
  virtual IoStatus write_some(const std::uint8_t* buf, std::size_t n,
                              std::size_t& put) = 0;
};

// Loops write_some until every byte is out. kOk or the first failure.
IoStatus write_all(ByteStream& s, const std::uint8_t* data, std::size_t n);

// frame_encode + write_all.
IoStatus write_frame(ByteStream& s, const std::vector<std::uint8_t>& body);

// Blocking read of exactly one frame through `reader` (which may already
// hold buffered bytes from a previous read-ahead). On kOk, `body` holds
// the verified frame body. IoStatus reports stream-level failures;
// `frame_status` reports framing-level rejection (kOk + poisoned reader
// never happens: framing damage returns kError with the frame status).
IoStatus read_frame(ByteStream& s, FrameReader& reader,
                    std::vector<std::uint8_t>& body,
                    FrameStatus& frame_status);

}  // namespace fedclust::net
