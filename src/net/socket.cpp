#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fedclust::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Address Address::parse(const std::string& spec) {
  Address a;
  std::string rest = spec;
  if (spec.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.path = spec.substr(5);
    if (a.path.empty()) {
      throw std::invalid_argument("address: empty unix socket path in '" +
                                  spec + "'");
    }
    if (a.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::invalid_argument("address: unix socket path too long: " +
                                  a.path);
    }
    return a;
  }
  if (spec.rfind("tcp:", 0) == 0) rest = spec.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw std::invalid_argument(
        "address: expected unix:/path or tcp:host:port, got '" + spec + "'");
  }
  a.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
    throw std::invalid_argument("address: bad port '" + port_str + "' in '" +
                                spec + "'");
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

std::string Address::describe() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

int listen_on(const Address& addr) {
  if (addr.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un sa = {};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(addr.path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      throw_errno("bind(" + addr.describe() + ")");
    }
    if (::listen(fd, 16) != 0) {
      ::close(fd);
      throw_errno("listen(" + addr.describe() + ")");
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = {};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (addr.host.empty() || addr.host == "*" || addr.host == "0.0.0.0") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("listen: host must be a numeric IPv4 address, "
                             "got " + addr.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw_errno("bind(" + addr.describe() + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("listen(" + addr.describe() + ")");
  }
  return fd;
}

int connect_to(const Address& addr) {
  if (addr.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un sa = {};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(addr.port);
  if (::getaddrinfo(addr.host.c_str(), port.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

int accept_conn(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  return fd < 0 ? -1 : fd;
}

namespace {

void set_timeout(int fd, int optname, int ms) {
  timeval tv = {};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

}  // namespace

void set_recv_timeout(int fd, int ms) { set_timeout(fd, SO_RCVTIMEO, ms); }
void set_send_timeout(int fd, int ms) { set_timeout(fd, SO_SNDTIMEO, ms); }

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p = {};
  p.fd = fd;
  p.events = POLLIN;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

IoStatus FdStream::read_some(std::uint8_t* buf, std::size_t n,
                             std::size_t& got) {
  got = 0;
  while (true) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc > 0) {
      got = static_cast<std::size_t>(rc);
      return IoStatus::kOk;
    }
    if (rc == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
    return IoStatus::kError;
  }
}

IoStatus FdStream::write_some(const std::uint8_t* buf, std::size_t n,
                              std::size_t& put) {
  put = 0;
  while (true) {
    const ssize_t rc = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (rc >= 0) {
      put = static_cast<std::size_t>(rc);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
    return IoStatus::kError;
  }
}

}  // namespace fedclust::net
