#include "net/server_transport.h"

#include <algorithm>
#include <limits>
#include <poll.h>

#include "fl/wire.h"
#include "net/message.h"
#include "net/stream.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fedclust::net {

namespace {

using fedclust::fl::wire::CodecId;
using fedclust::fl::wire::MessageKind;

std::vector<std::uint8_t> envelope_of(const std::vector<float>& v,
                                      std::uint64_t round) {
  // Always raw_f32: the experiment codec is applied server-side by
  // pull_model/deliver_update; the physical transport must not re-quantize.
  return fl::wire::encode(MessageKind::kModelPull, CodecId::kRawF32,
                          fl::wire::kServerSender, round, v);
}

}  // namespace

ServerTransport::ServerTransport(ServerOptions opts)
    : opts_(std::move(opts)) {}

ServerTransport::~ServerTransport() {
  for (Worker& w : workers_) {
    if (w.alive) close_fd(w.fd);
    w.alive = false;
  }
  close_fd(listen_fd_);
}

void ServerTransport::start() {
  const Address addr = Address::parse(opts_.listen);
  listen_fd_ = listen_on(addr);
  FC_LOG_INFO << "server: listening on " << addr.describe();
}

std::size_t ServerTransport::live_workers() const {
  std::size_t n = 0;
  for (const Worker& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

bool ServerTransport::admit_worker(bool campaign) {
  const int fd = accept_conn(listen_fd_);
  if (fd < 0) return false;
  set_recv_timeout(fd, opts_.io_timeout_ms);
  set_send_timeout(fd, opts_.io_timeout_ms);

  FdStream s(fd);
  FrameReader reader;
  std::vector<std::uint8_t> body;
  FrameStatus fst = FrameStatus::kNeedMore;
  HelloMsg hello;
  if (read_frame(s, reader, body, fst) != IoStatus::kOk ||
      !decode_hello(body, hello)) {
    FC_LOG_WARN << "server: rejecting connection (bad hello, frame="
                << frame_status_name(fst) << ")";
    close_fd(fd);
    return false;
  }
  if (hello.proto != kProtocolVersion) {
    FC_LOG_WARN << "server: rejecting worker (protocol " << hello.proto
                << " != " << kProtocolVersion << ")";
    close_fd(fd);
    return false;
  }
  if (hello.fingerprint != opts_.fingerprint || hello.seed != opts_.seed) {
    FC_LOG_WARN << "server: rejecting worker (config mismatch: fingerprint "
                << hello.fingerprint << " vs " << opts_.fingerprint
                << ", seed " << hello.seed << " vs " << opts_.seed << ")";
    close_fd(fd);
    return false;
  }

  Worker w;
  w.fd = fd;
  w.id = next_worker_id_++;
  w.alive = true;
  w.last_heard = util::process_elapsed_seconds();
  w.calls_served = hello.calls_served;

  WelcomeMsg welcome;
  welcome.worker_id = w.id;
  welcome.next_round = current_round_;
  welcome.n_workers = static_cast<std::uint32_t>(opts_.expect_workers);
  if (write_frame(s, encode_welcome(welcome)) != IoStatus::kOk) {
    close_fd(fd);
    return false;
  }

  if (!campaign) {
    OBS_COUNTER_ADD("net.connects", 1);
    OBS_JOURNAL(current_round_, w.id, kConnect);
  } else if (hello.calls_served > 0 || hello.resume_round > 0) {
    OBS_COUNTER_ADD("net.worker_restarts", 1);
    OBS_JOURNAL(current_round_, w.id, kWorkerRestart, hello.calls_served);
  } else {
    OBS_COUNTER_ADD("net.reconnects", 1);
    OBS_JOURNAL(current_round_, w.id, kReconnect);
  }
  FC_LOG_INFO << "server: worker " << w.id << " joined"
              << (campaign ? " (mid-campaign)" : "") << ", served="
              << hello.calls_served;
  workers_.push_back(std::move(w));
  return true;
}

bool ServerTransport::wait_for_workers() {
  const double deadline = util::process_elapsed_seconds() +
                          opts_.accept_timeout_ms / 1000.0;
  while (live_workers() < opts_.expect_workers) {
    const double left = deadline - util::process_elapsed_seconds();
    if (left <= 0.0) return false;
    if (wait_readable(listen_fd_, static_cast<int>(left * 1000.0) + 1)) {
      admit_worker(/*campaign=*/false);
    }
  }
  return true;
}

void ServerTransport::shutdown_workers() {
  const std::vector<std::uint8_t> bye = encode_shutdown();
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    FdStream s(w.fd);
    write_frame(s, bye);  // best-effort: the worker may already be gone
    close_fd(w.fd);
    w.alive = false;
  }
}

void ServerTransport::worker_lost(std::size_t w,
                                  const std::vector<fl::TrainCall>& calls,
                                  std::vector<CallState>& st,
                                  std::vector<fl::TrainOutcome>& outcomes,
                                  std::size_t& remaining) {
  Worker& worker = workers_[w];
  if (!worker.alive) return;
  FC_LOG_WARN << "server: lost worker " << worker.id << " with "
              << worker.inflight.size() << " call(s) in flight";
  close_fd(worker.fd);
  worker.alive = false;
  OBS_COUNTER_ADD("fault.worker_crash", 1);
  const std::vector<std::size_t> orphans = std::move(worker.inflight);
  worker.inflight.clear();
  for (const std::size_t i : orphans) {
    if (st[i].done) continue;
    st[i].worker = -1;
    requeue(i, calls, st, outcomes, remaining);
  }
}

void ServerTransport::requeue(std::size_t i,
                              const std::vector<fl::TrainCall>& calls,
                              std::vector<CallState>& st,
                              std::vector<fl::TrainOutcome>& outcomes,
                              std::size_t& remaining) {
  CallState& c = st[i];
  if (c.attempts >= static_cast<std::uint32_t>(opts_.backoff.max_attempts)) {
    // Retry budget spent: the update is lost. The caller bills it through
    // the same fault counters as a simulated comm failure.
    outcomes[i].ok = false;
    outcomes[i].attempts = c.attempts;
    c.done = true;
    --remaining;
    return;
  }
  c.ready_at = util::process_elapsed_seconds() +
               opts_.backoff.delay_seconds(opts_.seed, calls[i].client,
                                           calls[i].round, c.attempts);
}

bool ServerTransport::dispatch(std::size_t i, std::size_t w,
                               const std::vector<fl::TrainCall>& calls,
                               std::vector<CallState>& st,
                               std::vector<fl::TrainOutcome>& outcomes,
                               std::size_t& remaining) {
  const fl::TrainCall& call = calls[i];
  TrainReqMsg req;
  req.client = call.client;
  req.round = call.round;
  req.opts = call.opts;
  req.rng = call.rng;
  req.start_env = envelope_of(call.start, call.round);
  if (call.prox_ref) req.prox_env = envelope_of(*call.prox_ref, call.round);
  if (call.grad_offset) {
    req.offset_env = envelope_of(*call.grad_offset, call.round);
  }

  st[i].attempts += 1;
  FdStream s(workers_[w].fd);
  if (write_frame(s, encode_train_req(req)) != IoStatus::kOk) {
    worker_lost(w, calls, st, outcomes, remaining);  // requeues i too
    return false;
  }
  st[i].worker = static_cast<int>(w);
  workers_[w].inflight.push_back(i);
  return true;
}

bool ServerTransport::drain_frames(std::size_t w,
                                   const std::vector<fl::TrainCall>& calls,
                                   std::vector<CallState>& st,
                                   std::vector<fl::TrainOutcome>& outcomes,
                                   std::size_t& remaining) {
  Worker& worker = workers_[w];
  std::vector<std::uint8_t> body;
  while (worker.alive) {
    const FrameStatus fst = worker.reader.next(body);
    if (fst == FrameStatus::kNeedMore) return true;
    if (fst != FrameStatus::kOk) {
      // Framing damage: the connection is untrustworthy from here on
      // (FrameReader poisons itself), so the worker is dropped before any
      // byte of the damaged frame reaches a decoder.
      OBS_COUNTER_ADD("net.frame_rejects", 1);
      OBS_JOURNAL(current_round_, worker.id, kFrameReject,
                  static_cast<std::uint64_t>(fst));
      FC_LOG_WARN << "server: frame rejected from worker " << worker.id
                  << " (" << frame_status_name(fst) << ")";
      worker_lost(w, calls, st, outcomes, remaining);
      return false;
    }

    const std::optional<MsgType> type = peek_type(body);
    if (!type) {
      OBS_COUNTER_ADD("net.frame_rejects", 1);
      OBS_JOURNAL(current_round_, worker.id, kFrameReject, 0);
      worker_lost(w, calls, st, outcomes, remaining);
      return false;
    }
    switch (*type) {
      case MsgType::kHeartbeat: {
        HeartbeatMsg hb;
        if (decode_heartbeat(body, hb)) worker.calls_served = hb.calls_served;
        break;
      }
      case MsgType::kError: {
        // The worker could not serve a request (e.g. an embedded envelope
        // failed its CRC in transit). Its queue state is now uncertain, so
        // requeue everything it held elsewhere.
        ErrorMsg err;
        if (decode_error(body, err)) {
          FC_LOG_WARN << "server: worker " << worker.id
                      << " reported error: " << err.reason;
        }
        OBS_COUNTER_ADD("net.frame_rejects", 1);
        OBS_JOURNAL(current_round_, worker.id, kFrameReject,
                    err.code);
        worker_lost(w, calls, st, outcomes, remaining);
        return false;
      }
      case MsgType::kTrainResp: {
        TrainRespMsg resp;
        if (!decode_train_resp(body, resp)) {
          OBS_COUNTER_ADD("net.frame_rejects", 1);
          OBS_JOURNAL(current_round_, worker.id, kFrameReject, 0);
          worker_lost(w, calls, st, outcomes, remaining);
          return false;
        }
        // Match the response to its call. A stale duplicate (the call was
        // already completed via a retry on another worker) is ignored —
        // both workers computed the identical result, so dropping one is
        // determinism-safe.
        std::size_t i = calls.size();
        for (std::size_t k = 0; k < calls.size(); ++k) {
          if (!st[k].done && calls[k].client == resp.client &&
              calls[k].round == resp.round) {
            i = k;
            break;
          }
        }
        auto& inflight = worker.inflight;
        if (i < calls.size()) {
          inflight.erase(std::remove(inflight.begin(), inflight.end(), i),
                         inflight.end());
        }
        if (i == calls.size()) break;  // stale or unknown: ignore
        fl::TrainOutcome& out = outcomes[i];
        out.attempts = st[i].attempts;
        out.loss = resp.loss;
        out.train_us = resp.train_us;
        if (!resp.ok) {
          requeue(i, calls, st, outcomes, remaining);
          st[i].worker = -1;
          break;
        }
        fl::wire::Envelope env;
        const auto ds = fl::wire::try_decode(resp.params_env.data(),
                                             resp.params_env.size(), env);
        if (ds != fl::wire::DecodeStatus::kOk ||
            env.payload.size() != calls[i].start.size()) {
          // Frame CRC passed but the inner envelope is damaged — treat as a
          // failed attempt and retry elsewhere.
          OBS_COUNTER_ADD("net.frame_rejects", 1);
          OBS_JOURNAL(current_round_, worker.id, kFrameReject,
                      static_cast<std::uint64_t>(ds));
          st[i].worker = -1;
          requeue(i, calls, st, outcomes, remaining);
          break;
        }
        out.ok = true;
        out.params = std::move(env.payload);
        worker.calls_served += 1;
        st[i].done = true;
        --remaining;
        break;
      }
      default:
        // kHello/kWelcome/kTrainReq/kShutdown are not valid worker->server
        // messages mid-campaign; drop the peer.
        worker_lost(w, calls, st, outcomes, remaining);
        return false;
    }
  }
  return worker.alive;
}

void ServerTransport::execute(const std::vector<fl::TrainCall>& calls,
                              std::vector<fl::TrainOutcome>& outcomes) {
  outcomes.assign(calls.size(), fl::TrainOutcome{});
  if (calls.empty()) return;
  current_round_ = calls.front().round;
  std::vector<CallState> st(calls.size());
  std::size_t remaining = calls.size();
  const double hb_deadline = opts_.io_timeout_ms / 1000.0;

  while (remaining > 0) {
    // Dispatch every ready, unassigned call to the least-loaded live worker.
    double now = util::process_elapsed_seconds();
    for (std::size_t i = 0; i < calls.size(); ++i) {
      while (!st[i].done && st[i].worker < 0 && st[i].ready_at <= now) {
        std::size_t best = workers_.size();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (!workers_[w].alive) continue;
          if (best == workers_.size() ||
              workers_[w].inflight.size() < workers_[best].inflight.size()) {
            best = w;
          }
        }
        if (best == workers_.size()) break;  // nobody alive right now
        if (dispatch(i, best, calls, st, outcomes, remaining)) break;
        // dispatch failed -> that worker died and i was requeued; if i is
        // still ready (attempt budget left, zero backoff) try the next one.
        if (st[i].done || st[i].ready_at > now) break;
      }
    }
    if (remaining == 0) break;

    // Nobody alive and nothing in flight: hold the door open for a
    // crash-restarted worker, then fail what's left. The campaign always
    // completes; lost calls degrade to lost updates.
    if (live_workers() == 0) {
      FC_LOG_WARN << "server: no live workers; waiting " << opts_.io_timeout_ms
                  << " ms for a replacement";
      if (wait_readable(listen_fd_, opts_.io_timeout_ms)) {
        admit_worker(/*campaign=*/true);
        continue;
      }
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (st[i].done) continue;
        outcomes[i].ok = false;
        outcomes[i].attempts = st[i].attempts;
        st[i].done = true;
        --remaining;
      }
      break;
    }

    // Poll timeout: the nearest of (a) a backoff window opening, (b) a
    // heartbeat deadline expiring.
    now = util::process_elapsed_seconds();
    double next_event = now + 60.0;
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if (!st[i].done && st[i].worker < 0) {
        next_event = std::min(next_event, st[i].ready_at);
      }
    }
    for (const Worker& w : workers_) {
      if (w.alive && !w.inflight.empty()) {
        next_event = std::min(next_event, w.last_heard + hb_deadline);
      }
    }
    const int timeout_ms =
        std::max(1, static_cast<int>((next_event - now) * 1000.0) + 1);

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_worker;  // workers_ index per pollfd (past 0)
    fds.push_back({listen_fd_, POLLIN, 0});
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].alive) continue;
      fds.push_back({workers_[w].fd, POLLIN, 0});
      fd_worker.push_back(w);
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      FC_LOG_WARN << "server: poll failed; failing remaining calls";
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (st[i].done) continue;
        outcomes[i].ok = false;
        outcomes[i].attempts = st[i].attempts;
        st[i].done = true;
        --remaining;
      }
      break;
    }

    if (rc > 0 && (fds[0].revents & POLLIN)) {
      admit_worker(/*campaign=*/true);  // crash-restarted worker rejoining
    }
    for (std::size_t k = 1; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const std::size_t w = fd_worker[k - 1];
      Worker& worker = workers_[w];
      if (!worker.alive) continue;
      std::uint8_t chunk[16 * 1024];
      std::size_t got = 0;
      FdStream s(worker.fd);
      const IoStatus ist = s.read_some(chunk, sizeof(chunk), got);
      if (ist == IoStatus::kOk) {
        worker.last_heard = util::process_elapsed_seconds();
        worker.reader.feed(chunk, got);
        drain_frames(w, calls, st, outcomes, remaining);
      } else if (ist != IoStatus::kTimeout) {
        // EOF (kill -9, clean exit) or a connection error.
        worker_lost(w, calls, st, outcomes, remaining);
      }
    }

    // Heartbeat supervision: a worker holding calls that has said nothing
    // for a full deadline window is presumed hung or dead.
    now = util::process_elapsed_seconds();
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      Worker& worker = workers_[w];
      if (!worker.alive || worker.inflight.empty()) continue;
      if (now - worker.last_heard > hb_deadline) {
        OBS_COUNTER_ADD("net.heartbeat_missed", 1);
        OBS_JOURNAL(current_round_, worker.id, kHeartbeatMissed,
                    worker.inflight.size());
        FC_LOG_WARN << "server: worker " << worker.id
                    << " missed its heartbeat deadline";
        worker_lost(w, calls, st, outcomes, remaining);
      }
    }
  }
}

}  // namespace fedclust::net
