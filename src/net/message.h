#pragma once

// Transport control messages — the bodies that travel inside net frames.
//
// A frame body is one message: a type byte followed by little-endian fields
// (util::put_*_le / get_*_le). Model parameters never appear as raw floats
// here; they ride inside wire:: envelopes (always raw_f32 — the experiment
// codec is simulated server-side), embedded as length-prefixed byte blobs.
// That gives two independent integrity stages: the frame CRC over the whole
// body, then the envelope CRC over each parameter vector, mirroring the
// in-process quarantine pipeline.
//
// Every decode is bounds-checked; decode_* return false on any structural
// problem (short body, bad type, trailing garbage, oversized counts) and
// never read out of range. Decoding the *embedded envelopes* is the
// caller's job via wire::try_decode so failures can be journalled with the
// precise DecodeStatus.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fl/client.h"
#include "util/rng.h"

namespace fedclust::net {

inline constexpr std::uint16_t kProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 1,      // worker -> server: identify + config fingerprint
  kWelcome = 2,    // server -> worker: assigned id + campaign position
  kTrainReq = 3,   // server -> worker: one TrainCall
  kTrainResp = 4,  // worker -> server: one TrainOutcome
  kHeartbeat = 5,  // worker -> server: liveness while idle
  kShutdown = 6,   // server -> worker: campaign over, exit cleanly
  kError = 7,      // worker -> server: request could not be served
};

const char* msg_type_name(MsgType t);

// Peeks the type byte; returns std::nullopt for empty bodies or unknown
// type values.
std::optional<MsgType> peek_type(const std::vector<std::uint8_t>& body);

// ---- kHello ------------------------------------------------------------

struct HelloMsg {
  std::uint16_t proto = kProtocolVersion;
  std::uint64_t fingerprint = 0;   // canonical config fingerprint
  std::uint64_t seed = 0;          // experiment seed (cross-check)
  std::uint64_t resume_round = 0;  // from the worker state file, else 0
  std::uint64_t calls_served = 0;  // lifetime counter across restarts
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& m);
bool decode_hello(const std::vector<std::uint8_t>& body, HelloMsg& out);

// ---- kWelcome ----------------------------------------------------------

struct WelcomeMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t next_round = 0;  // round the server will dispatch next
  std::uint32_t n_workers = 0;   // peers the server expects
};

std::vector<std::uint8_t> encode_welcome(const WelcomeMsg& m);
bool decode_welcome(const std::vector<std::uint8_t>& body, WelcomeMsg& out);

// ---- kTrainReq ---------------------------------------------------------

// Wire image of fl::TrainCall. The start / prox_ref / grad_offset vectors
// are shipped as embedded wire envelopes (kModelPull, raw_f32, sender =
// kServerSender, round = call round) so each gets its own CRC stage.
struct TrainReqMsg {
  std::uint64_t client = 0;
  std::uint64_t round = 0;
  fl::LocalTrainOptions opts;
  util::RngState rng;
  std::vector<std::uint8_t> start_env;
  std::optional<std::vector<std::uint8_t>> prox_env;
  std::optional<std::vector<std::uint8_t>> offset_env;
};

std::vector<std::uint8_t> encode_train_req(const TrainReqMsg& m);
bool decode_train_req(const std::vector<std::uint8_t>& body, TrainReqMsg& out);

// ---- kTrainResp --------------------------------------------------------

// ok == true carries the trained parameters as an embedded kUpdatePush
// raw_f32 envelope (sender = client). ok == false means the worker could
// not serve the call (e.g. an embedded envelope failed its CRC).
struct TrainRespMsg {
  std::uint64_t client = 0;
  std::uint64_t round = 0;
  bool ok = false;
  float loss = 0.0f;
  std::uint64_t train_us = 0;
  std::vector<std::uint8_t> params_env;  // empty when !ok
};

std::vector<std::uint8_t> encode_train_resp(const TrainRespMsg& m);
bool decode_train_resp(const std::vector<std::uint8_t>& body,
                       TrainRespMsg& out);

// ---- kHeartbeat --------------------------------------------------------

struct HeartbeatMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t calls_served = 0;
};

std::vector<std::uint8_t> encode_heartbeat(const HeartbeatMsg& m);
bool decode_heartbeat(const std::vector<std::uint8_t>& body,
                      HeartbeatMsg& out);

// ---- kShutdown ---------------------------------------------------------

std::vector<std::uint8_t> encode_shutdown();

// ---- kError ------------------------------------------------------------

struct ErrorMsg {
  std::uint32_t code = 0;  // wire::DecodeStatus ordinal or 0 (unspecified)
  std::string reason;
};

std::vector<std::uint8_t> encode_error(const ErrorMsg& m);
bool decode_error(const std::vector<std::uint8_t>& body, ErrorMsg& out);

}  // namespace fedclust::net
