#include "net/stream.h"

namespace fedclust::net {

IoStatus write_all(ByteStream& s, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    std::size_t put = 0;
    const IoStatus st = s.write_some(data + off, n - off, put);
    if (st != IoStatus::kOk) return st;
    if (put == 0) return IoStatus::kError;  // no progress = broken stream
    off += put;
  }
  return IoStatus::kOk;
}

IoStatus write_frame(ByteStream& s, const std::vector<std::uint8_t>& body) {
  const std::vector<std::uint8_t> framed = frame_encode(body);
  return write_all(s, framed.data(), framed.size());
}

IoStatus read_frame(ByteStream& s, FrameReader& reader,
                    std::vector<std::uint8_t>& body,
                    FrameStatus& frame_status) {
  std::uint8_t chunk[16 * 1024];
  while (true) {
    frame_status = reader.next(body);
    if (frame_status == FrameStatus::kOk) return IoStatus::kOk;
    if (frame_status != FrameStatus::kNeedMore) return IoStatus::kError;
    std::size_t got = 0;
    const IoStatus st = s.read_some(chunk, sizeof(chunk), got);
    if (st != IoStatus::kOk) {
      if (st == IoStatus::kEof) {
        // EOF mid-frame is truncation, surfaced as a framing error.
        frame_status = reader.finish();
      }
      return st;
    }
    reader.feed(chunk, got);
  }
}

}  // namespace fedclust::net
