#pragma once

// Length-prefixed, checksummed frames — the socket transport's outermost
// layer. A frame carries one transport message body (see net/message.h);
// float payloads inside bodies additionally travel as full wire:: envelopes
// with their own CRC, so a corrupted stream is rejected twice before any
// value can reach a model.
//
// Frame layout (all little-endian):
//
//   offset  size  field
//        0     4  magic 0xFEDCF7A3
//        4     4  body length N
//        8     4  CRC32C over the body bytes
//       12     N  body
//
// FrameReader is a pure incremental parser: feed() arbitrary byte chunks
// (however the socket delivered them), next() yields complete verified
// bodies. Any damage — flipped magic, oversized length, checksum mismatch —
// poisons the reader permanently: a stream that has lied once cannot be
// resynchronized, so the connection must be dropped (the same stance
// wire_test.cpp's bit-flip suite enforces for envelopes). Truncation is
// detected at EOF via finish().

#include <cstdint>
#include <vector>

namespace fedclust::net {

inline constexpr std::uint32_t kFrameMagic = 0xFEDCF7A3u;
inline constexpr std::size_t kFrameHeaderSize = 12;
// Generous bound: the largest legitimate body is a TrainReq with three
// raw_f32 envelopes of a full model. Anything beyond this is garbage (or a
// length field hit by a bit flip) and is rejected before allocation.
inline constexpr std::uint32_t kMaxFrameBody = 256u * 1024 * 1024;

enum class FrameStatus : std::uint8_t {
  kOk = 0,        // next(): a verified body was produced
  kNeedMore,      // next(): the buffered bytes end mid-frame
  kBadMagic,      // stream does not start with a frame
  kOversize,      // declared body length exceeds kMaxFrameBody
  kBadCrc,        // body bytes do not match the header checksum
  kTruncated,     // finish(): EOF landed mid-frame
};

const char* frame_status_name(FrameStatus s);

// Wraps a message body in a frame header.
std::vector<std::uint8_t> frame_encode(const std::vector<std::uint8_t>& body);

class FrameReader {
 public:
  // Appends raw stream bytes (no-op once poisoned).
  void feed(const std::uint8_t* data, std::size_t n);

  // Extracts the next complete frame body. kOk fills `body`; kNeedMore
  // means feed more bytes; any other status poisons the reader and every
  // later call returns it.
  FrameStatus next(std::vector<std::uint8_t>& body);

  // EOF check: kTruncated when verified-so-far bytes end mid-frame, the
  // sticky error when poisoned, else kOk.
  FrameStatus finish() const;

  bool poisoned() const { return error_ != FrameStatus::kOk; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  FrameStatus error_ = FrameStatus::kOk;
};

}  // namespace fedclust::net
