#pragma once

// net::ServerTransport — the socket implementation of fl::Transport.
//
// The server owns the campaign (Federation, sampling, billing, aggregation)
// and farms out only the pure local-training computation. execute() is an
// event loop over poll(2): it dispatches TrainCalls to the least-loaded
// live worker, watches every connection for responses and heartbeats,
// detects crashed or hung workers (EOF / framing damage / heartbeat
// deadline), and requeues their in-flight calls onto surviving workers with
// deterministic exponential backoff. A call whose retry budget runs out is
// reported ok = false — the caller bills it as a lost update; the campaign
// never aborts because a worker died.
//
// Workers may join mid-campaign (crash-restart): a handshake on the listen
// socket during execute() admits them immediately and they start taking
// requeued calls. Supervision telemetry flows through the usual channels —
// net.* counters and kConnect/kReconnect/kHeartbeatMissed/kWorkerRestart/
// kFrameReject journal rows (worker id in the client slot).

#include <cstdint>
#include <string>
#include <vector>

#include "fl/transport.h"
#include "net/backoff.h"
#include "net/frame.h"
#include "net/socket.h"

namespace fedclust::net {

struct ServerOptions {
  std::string listen;              // address spec (unix:/path or tcp:host:port)
  std::size_t expect_workers = 1;  // handshakes to wait for before round 0
  int io_timeout_ms = 30000;       // heartbeat deadline; also send timeout.
                                   // Must exceed the worst-case single-call
                                   // training time — workers are silent
                                   // while they train.
  int accept_timeout_ms = 60000;   // wait_for_workers() budget
  BackoffPolicy backoff;           // requeue schedule (from the fault plan)
  std::uint64_t seed = 0;          // experiment seed (handshake cross-check)
  std::uint64_t fingerprint = 0;   // canonical config fingerprint
};

class ServerTransport final : public fl::Transport {
 public:
  explicit ServerTransport(ServerOptions opts);
  ~ServerTransport() override;

  ServerTransport(const ServerTransport&) = delete;
  ServerTransport& operator=(const ServerTransport&) = delete;

  // Binds the listen socket; throws std::runtime_error on failure.
  void start();

  // Blocks until `expect_workers` workers have completed the handshake or
  // accept_timeout_ms passes; true when the quorum arrived.
  bool wait_for_workers();

  // Sends kShutdown to every live worker and closes all connections.
  void shutdown_workers();

  bool remote() const override { return true; }
  std::string name() const override { return "socket"; }

  void execute(const std::vector<fl::TrainCall>& calls,
               std::vector<fl::TrainOutcome>& outcomes) override;

  std::size_t live_workers() const;

 private:
  struct Worker {
    int fd = -1;
    std::uint32_t id = 0;
    bool alive = false;
    FrameReader reader;
    double last_heard = 0.0;          // process_elapsed_seconds()
    std::uint64_t calls_served = 0;
    std::vector<std::size_t> inflight;  // call indices awaiting a response
  };

  struct CallState {
    std::uint32_t attempts = 0;  // dispatches so far
    double ready_at = 0.0;       // earliest next dispatch (backoff)
    int worker = -1;             // index into workers_, -1 = unassigned
    bool done = false;
  };

  // Accepts + handshakes one pending connection; false when the peer was
  // rejected (bad hello) or accept failed. `campaign` selects the journal
  // row kind (kConnect vs kReconnect/kWorkerRestart).
  bool admit_worker(bool campaign);

  // Marks a worker dead, closes its fd, and requeues its in-flight calls.
  void worker_lost(std::size_t w, const std::vector<fl::TrainCall>& calls,
                   std::vector<CallState>& st,
                   std::vector<fl::TrainOutcome>& outcomes,
                   std::size_t& remaining);

  // Re-arms one call after a failed dispatch: schedules the next attempt,
  // or fails the call outright when the retry budget is exhausted.
  void requeue(std::size_t i, const std::vector<fl::TrainCall>& calls,
               std::vector<CallState>& st,
               std::vector<fl::TrainOutcome>& outcomes,
               std::size_t& remaining);

  // Sends one TrainReq; false (and worker_lost) on write failure.
  bool dispatch(std::size_t i, std::size_t w,
                const std::vector<fl::TrainCall>& calls,
                std::vector<CallState>& st,
                std::vector<fl::TrainOutcome>& outcomes,
                std::size_t& remaining);

  // Drains every complete frame buffered for worker `w`; false when the
  // worker was lost in the process.
  bool drain_frames(std::size_t w, const std::vector<fl::TrainCall>& calls,
                    std::vector<CallState>& st,
                    std::vector<fl::TrainOutcome>& outcomes,
                    std::size_t& remaining);

  ServerOptions opts_;
  int listen_fd_ = -1;
  std::vector<Worker> workers_;
  std::uint32_t next_worker_id_ = 0;
  std::uint64_t current_round_ = 0;  // journal context for transport rows
};

}  // namespace fedclust::net
