#include "net/backoff.h"

#include <algorithm>

#include "fl/fault.h"
#include "util/rng.h"

namespace fedclust::net {

namespace {

// Private stream salt; distinct from every fl:: salt so transport jitter
// can never collide with simulation streams.
constexpr std::uint64_t kBackoffSalt = 0xBAC0FF0000000000ULL;
constexpr std::uint64_t kClientStride = 1000003ULL;  // prime, as train_rng

}  // namespace

BackoffPolicy BackoffPolicy::from_fault_plan(const fl::FaultPlan& plan) {
  BackoffPolicy p;
  p.base = plan.backoff_base;
  p.mult = plan.backoff_mult;
  p.max_attempts = plan.max_retries + 1;
  return p;
}

double BackoffPolicy::delay_seconds(std::uint64_t seed, std::uint64_t client,
                                    std::uint64_t round,
                                    std::uint64_t attempt) const {
  if (attempt == 0) return 0.0;
  double d = base;
  for (std::uint64_t i = 1; i < attempt; ++i) {
    d *= mult;
    if (d >= cap_seconds) break;
  }
  d = std::min(d, cap_seconds);
  if (jitter > 0.0) {
    util::Rng stream = util::Rng(seed)
                           .split(kBackoffSalt + client * kClientStride + round)
                           .split(attempt);
    d *= 1.0 + jitter * stream.uniform();
  }
  return d;
}

}  // namespace fedclust::net
