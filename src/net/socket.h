#pragma once

// Thin POSIX socket helpers for the transport: address parsing
// ("unix:/path" or "tcp:host:port"), listen/connect/accept, per-fd
// timeouts, and the ByteStream adapter over a connected fd. Everything
// above this file is socket-agnostic (frames, messages, supervision logic
// run against ByteStream), so this is the only TU that touches <sys/*>.

#include <cstdint>
#include <string>

#include "net/stream.h"

namespace fedclust::net {

struct Address {
  bool is_unix = false;
  std::string path;  // unix socket path
  std::string host;  // tcp host (numeric or name)
  std::uint16_t port = 0;

  // "unix:/tmp/fed.sock", "tcp:127.0.0.1:7070", or "host:port" (tcp
  // implied). Throws std::invalid_argument on anything else.
  static Address parse(const std::string& spec);
  std::string describe() const;
};

// Bind + listen; throws std::runtime_error with errno detail. For unix
// addresses a stale socket file is unlinked first.
int listen_on(const Address& addr);

// Connect; returns -1 on failure (callers retry with backoff).
int connect_to(const Address& addr);

// Accept one pending connection; returns -1 when none is ready.
int accept_conn(int listen_fd);

// SO_RCVTIMEO / SO_SNDTIMEO (ms; 0 = blocking forever).
void set_recv_timeout(int fd, int ms);
void set_send_timeout(int fd, int ms);

void close_fd(int fd);

// True when `fd` has readable data (or EOF) within `timeout_ms`; false on
// timeout. Throws on poll() failure.
bool wait_readable(int fd, int timeout_ms);

// ByteStream over a connected socket fd (not owned). Reads honor the fd's
// SO_RCVTIMEO (mapped to kTimeout); writes use MSG_NOSIGNAL so a dead peer
// surfaces as kError instead of SIGPIPE.
class FdStream final : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}

  IoStatus read_some(std::uint8_t* buf, std::size_t n,
                     std::size_t& got) override;
  IoStatus write_some(const std::uint8_t* buf, std::size_t n,
                      std::size_t& put) override;

  int fd() const { return fd_; }

 private:
  int fd_;
};

}  // namespace fedclust::net
