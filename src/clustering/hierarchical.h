#pragma once

// Agglomerative hierarchical clustering with Lance–Williams linkage updates
// — the one-shot grouping step at the heart of FedClust (Algorithm 1,
// line 6): HC(M, λ) on the server's proximity matrix.
//
// Naive O(n^3) merging is intentional: n is the client count (~100s), where
// simplicity beats a priority-queue implementation.

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::clustering {

enum class Linkage { kSingle, kComplete, kAverage, kWard };

Linkage linkage_from_string(const std::string& s);

// Full merge history. Leaf ids are 0..n-1; the i-th merge creates id n+i.
struct Dendrogram {
  struct Merge {
    std::size_t a;
    std::size_t b;
    float distance;  // linkage distance at which a and b merged
  };
  std::size_t n_leaves = 0;
  std::vector<Merge> merges;  // exactly n_leaves - 1 entries
};

// dist must be a valid distance matrix (see validate_distance_matrix).
Dendrogram agglomerative(const tensor::Tensor& dist,
                         Linkage linkage = Linkage::kAverage);

// Applies every merge with distance <= lambda; returns cluster labels
// compacted to 0..k-1 (in order of first appearance by leaf index).
std::vector<std::size_t> cut_by_threshold(const Dendrogram& dendro,
                                          float lambda);

// Stops when exactly k clusters remain (k clamped to [1, n]).
std::vector<std::size_t> cut_to_k(const Dendrogram& dendro, std::size_t k);

std::size_t num_clusters(const std::vector<std::size_t>& labels);

// Data-driven threshold selection (the paper leaves λ as a user knob and
// names automating it as future work; this implements the natural largest-
// gap heuristic): sort the merge distances and place the threshold in the
// middle of the widest gap between consecutive merges, considering only
// cuts that yield a cluster count in [min_clusters, max_clusters]. Falls
// back to "everything in one cluster" when no gap exists (n <= 1 or all
// merges equidistant).
float gap_threshold(const Dendrogram& dendro, std::size_t min_clusters = 2,
                    std::size_t max_clusters = 16);

// Newick serialization of the dendrogram (leaves named by index, branch
// attributes carry the merge distance), e.g. "((0,1):0.5,(2,3):0.4):9.1;".
// Useful for external visualization of FedClust's one-shot clustering.
std::string to_newick(const Dendrogram& dendro);

// Convenience: HC(M, λ) in one call — the exact server-side operation in
// the paper.
std::vector<std::size_t> cluster_by_threshold(
    const tensor::Tensor& dist, float lambda,
    Linkage linkage = Linkage::kAverage);

}  // namespace fedclust::clustering
