#pragma once

// Pairwise proximity matrices. FedClust's server builds an m x m matrix of
// L2 distances between the clients' uploaded final-layer weights (Eq. 3 of
// the paper); cosine distance serves the CFL baseline.

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::clustering {

// Symmetric (n, n) matrix with zero diagonal from a pairwise callback.
tensor::Tensor distance_matrix(
    std::size_t n,
    const std::function<float(std::size_t, std::size_t)>& dist);

// ||v_p - v_q||_2 over a set of equal-length vectors.
tensor::Tensor l2_distance_matrix(
    const std::vector<std::vector<float>>& vectors);

// 1 - cosine_similarity.
tensor::Tensor cosine_distance_matrix(
    const std::vector<std::vector<float>>& vectors);

// Validates symmetry / zero diagonal / non-negativity; throws otherwise.
void validate_distance_matrix(const tensor::Tensor& d);

}  // namespace fedclust::clustering
