#pragma once

// External clustering-quality metrics, used by tests and by the ablation
// benches (final-layer vs all-weights proximity, linkage choice).

#include <cstddef>
#include <vector>

namespace fedclust::clustering {

// Adjusted Rand Index between two labelings of the same items; 1 = identical
// partitions, ~0 = random agreement. Labelings may use arbitrary ids.
double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b);

// Fraction of items whose cluster's majority ground-truth label matches
// their own.
double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth);

}  // namespace fedclust::clustering
