#include "clustering/metrics.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace fedclust::clustering {

namespace {

double choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("adjusted_rand_index: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) throw std::invalid_argument("adjusted_rand_index: empty");

  // Contingency table.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> joint;
  std::map<std::size_t, std::size_t> row_sum;
  std::map<std::size_t, std::size_t> col_sum;
  for (std::size_t i = 0; i < n; ++i) {
    ++joint[{a[i], b[i]}];
    ++row_sum[a[i]];
    ++col_sum[b[i]];
  }

  double sum_joint = 0.0;
  for (const auto& [key, c] : joint) sum_joint += choose2(static_cast<double>(c));
  double sum_rows = 0.0;
  for (const auto& [key, c] : row_sum) sum_rows += choose2(static_cast<double>(c));
  double sum_cols = 0.0;
  for (const auto& [key, c] : col_sum) sum_cols += choose2(static_cast<double>(c));

  const double total = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / (max_index - expected);
}

double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth) {
  if (predicted.size() != truth.size()) {
    throw std::invalid_argument("purity: size mismatch");
  }
  if (predicted.empty()) throw std::invalid_argument("purity: empty");

  std::map<std::size_t, std::map<std::size_t, std::size_t>> per_cluster;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ++per_cluster[predicted[i]][truth[i]];
  }
  std::size_t hits = 0;
  for (const auto& [cluster, counts] : per_cluster) {
    std::size_t best = 0;
    for (const auto& [label, c] : counts) best = std::max(best, c);
    hits += best;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace fedclust::clustering
