#include "clustering/distance.h"

#include <cmath>
#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace fedclust::clustering {

tensor::Tensor distance_matrix(
    std::size_t n,
    const std::function<float(std::size_t, std::size_t)>& dist) {
  tensor::Tensor d({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const float v = dist(i, j);
      d[i * n + j] = v;
      d[j * n + i] = v;
    }
  }
  return d;
}

tensor::Tensor l2_distance_matrix(
    const std::vector<std::vector<float>>& vectors) {
  return distance_matrix(vectors.size(), [&](std::size_t i, std::size_t j) {
    return tensor::l2_distance(vectors[i], vectors[j]);
  });
}

tensor::Tensor cosine_distance_matrix(
    const std::vector<std::vector<float>>& vectors) {
  return distance_matrix(vectors.size(), [&](std::size_t i, std::size_t j) {
    return 1.0f - tensor::cosine_similarity(vectors[i], vectors[j]);
  });
}

void validate_distance_matrix(const tensor::Tensor& d) {
  if (d.ndim() != 2 || d.dim(0) != d.dim(1)) {
    throw std::invalid_argument("distance matrix must be square");
  }
  const std::size_t n = d.dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i * n + i] != 0.0f) {
      throw std::invalid_argument("distance matrix diagonal must be zero");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i * n + j] < 0.0f || std::isnan(d[i * n + j])) {
        throw std::invalid_argument("distance matrix entries must be >= 0");
      }
      if (d[i * n + j] != d[j * n + i]) {
        throw std::invalid_argument("distance matrix must be symmetric");
      }
    }
  }
}

}  // namespace fedclust::clustering
