#include "clustering/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "clustering/distance.h"

namespace fedclust::clustering {

Linkage linkage_from_string(const std::string& s) {
  if (s == "single") return Linkage::kSingle;
  if (s == "complete") return Linkage::kComplete;
  if (s == "average") return Linkage::kAverage;
  if (s == "ward") return Linkage::kWard;
  throw std::invalid_argument("unknown linkage: " + s);
}

namespace {

// Lance–Williams update: distance from the merged cluster (a ∪ b) to c.
float lw_update(Linkage linkage, float dac, float dbc, float dab,
                std::size_t na, std::size_t nb, std::size_t nc) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dac, dbc);
    case Linkage::kComplete:
      return std::max(dac, dbc);
    case Linkage::kAverage: {
      const float fa = static_cast<float>(na) / static_cast<float>(na + nb);
      return fa * dac + (1.0f - fa) * dbc;
    }
    case Linkage::kWard: {
      const float n_abc = static_cast<float>(na + nb + nc);
      const float t = (static_cast<float>(na + nc) * dac * dac +
                       static_cast<float>(nb + nc) * dbc * dbc -
                       static_cast<float>(nc) * dab * dab) /
                      n_abc;
      return std::sqrt(std::max(t, 0.0f));
    }
  }
  throw std::logic_error("lw_update: unreachable");
}

}  // namespace

Dendrogram agglomerative(const tensor::Tensor& dist, Linkage linkage) {
  validate_distance_matrix(dist);
  const std::size_t n = dist.dim(0);
  Dendrogram dendro;
  dendro.n_leaves = n;
  if (n <= 1) return dendro;

  // active[i]: current cluster id occupying row i (or SIZE_MAX when merged
  // away); sizes track member counts for the LW formulas.
  std::vector<double> d(n * n);
  for (std::size_t i = 0; i < n * n; ++i) d[i] = dist[i];
  std::vector<std::size_t> id(n);
  std::iota(id.begin(), id.end(), 0);
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> alive(n, true);

  std::size_t next_id = n;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (d[i * n + j] < best) {
          best = d[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }

    dendro.merges.push_back(
        {id[bi], id[bj], static_cast<float>(best)});

    // Merge bj into bi's row and update distances to the rest.
    const float dab = static_cast<float>(d[bi * n + bj]);
    for (std::size_t c = 0; c < n; ++c) {
      if (!alive[c] || c == bi || c == bj) continue;
      const float updated = lw_update(
          linkage, static_cast<float>(d[bi * n + c]),
          static_cast<float>(d[bj * n + c]), dab, size[bi], size[bj],
          size[c]);
      d[bi * n + c] = updated;
      d[c * n + bi] = updated;
    }
    size[bi] += size[bj];
    alive[bj] = false;
    id[bi] = next_id++;
  }
  return dendro;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Replays merges satisfying `take`, then compacts roots to labels 0..k-1.
std::vector<std::size_t> replay(
    const Dendrogram& dendro,
    const std::function<bool(std::size_t, const Dendrogram::Merge&)>& take) {
  const std::size_t n = dendro.n_leaves;
  UnionFind uf(n + dendro.merges.size());
  std::size_t next_id = n;
  for (std::size_t i = 0; i < dendro.merges.size(); ++i, ++next_id) {
    const auto& m = dendro.merges[i];
    // The merged node's id must always alias its children so later merges
    // referring to it resolve; we only *count* it as a real merge if taken.
    if (take(i, m)) {
      uf.unite(m.a, m.b);
    }
    uf.unite(next_id, m.a);  // new node points at the (possibly un-merged) a
    if (take(i, m)) {
      uf.unite(next_id, m.b);
    }
  }
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> compact(n + dendro.merges.size(),
                                   std::numeric_limits<std::size_t>::max());
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    if (compact[root] == std::numeric_limits<std::size_t>::max()) {
      compact[root] = k++;
    }
    labels[i] = compact[root];
  }
  return labels;
}

}  // namespace

std::vector<std::size_t> cut_by_threshold(const Dendrogram& dendro,
                                          float lambda) {
  return replay(dendro, [lambda](std::size_t, const Dendrogram::Merge& m) {
    return m.distance <= lambda;
  });
}

std::vector<std::size_t> cut_to_k(const Dendrogram& dendro, std::size_t k) {
  const std::size_t n = dendro.n_leaves;
  if (n == 0) return {};
  k = std::clamp<std::size_t>(k, 1, n);
  // Applying the first (n - k) merges leaves exactly k clusters. Merges are
  // recorded in nondecreasing-ish linkage order by construction.
  const std::size_t take_count = n - k;
  return replay(dendro, [take_count](std::size_t i,
                                     const Dendrogram::Merge&) {
    return i < take_count;
  });
}

std::size_t num_clusters(const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  for (const std::size_t l : labels) k = std::max(k, l + 1);
  return labels.empty() ? 0 : k;
}

float gap_threshold(const Dendrogram& dendro, std::size_t min_clusters,
                    std::size_t max_clusters) {
  const std::size_t n = dendro.n_leaves;
  if (n <= 1 || dendro.merges.empty()) return 0.0f;

  // Merge i leaves n - i - 1 clusters if we cut right after it, i.e. a cut
  // between merges i and i+1 yields n - i - 1 clusters. Respect the caller's
  // bounds on the resulting cluster count.
  std::vector<float> d;
  d.reserve(dendro.merges.size());
  for (const auto& m : dendro.merges) d.push_back(m.distance);
  std::sort(d.begin(), d.end());

  float best_gap = -1.0f;
  float best_threshold = d.back() + 1.0f;  // default: one cluster
  for (std::size_t i = 0; i + 1 < d.size(); ++i) {
    const std::size_t clusters = n - i - 1;
    if (clusters < min_clusters || clusters > max_clusters) continue;
    const float gap = d[i + 1] - d[i];
    if (gap > best_gap) {
      best_gap = gap;
      best_threshold = 0.5f * (d[i] + d[i + 1]);
    }
  }
  if (best_gap <= 0.0f) {
    // No admissible or informative gap: cut above everything.
    return d.back() + 1.0f;
  }
  return best_threshold;
}

std::string to_newick(const Dendrogram& dendro) {
  const std::size_t n = dendro.n_leaves;
  if (n == 0) return ";";
  // Build the textual form of every internal node bottom-up.
  std::vector<std::string> text(n + dendro.merges.size());
  for (std::size_t i = 0; i < n; ++i) text[i] = std::to_string(i);
  char buf[32];
  for (std::size_t i = 0; i < dendro.merges.size(); ++i) {
    const auto& m = dendro.merges[i];
    std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(m.distance));
    text[n + i] = "(" + text[m.a] + "," + text[m.b] + "):" + buf;
  }
  return (dendro.merges.empty() ? text[0] : text.back()) + ";";
}

std::vector<std::size_t> cluster_by_threshold(const tensor::Tensor& dist,
                                              float lambda,
                                              Linkage linkage) {
  return cut_by_threshold(agglomerative(dist, linkage), lambda);
}

}  // namespace fedclust::clustering
