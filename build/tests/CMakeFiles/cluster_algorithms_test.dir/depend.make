# Empty dependencies file for cluster_algorithms_test.
# This may be replaced when dependencies are built.
