file(REMOVE_RECURSE
  "CMakeFiles/cluster_algorithms_test.dir/cluster_algorithms_test.cpp.o"
  "CMakeFiles/cluster_algorithms_test.dir/cluster_algorithms_test.cpp.o.d"
  "cluster_algorithms_test"
  "cluster_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
