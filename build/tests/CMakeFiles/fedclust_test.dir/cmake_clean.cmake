file(REMOVE_RECURSE
  "CMakeFiles/fedclust_test.dir/fedclust_test.cpp.o"
  "CMakeFiles/fedclust_test.dir/fedclust_test.cpp.o.d"
  "fedclust_test"
  "fedclust_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
