# Empty dependencies file for fedclust_test.
# This may be replaced when dependencies are built.
