file(REMOVE_RECURSE
  "CMakeFiles/newcomer_dynamics.dir/newcomer_dynamics.cpp.o"
  "CMakeFiles/newcomer_dynamics.dir/newcomer_dynamics.cpp.o.d"
  "newcomer_dynamics"
  "newcomer_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newcomer_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
