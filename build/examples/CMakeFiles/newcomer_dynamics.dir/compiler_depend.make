# Empty compiler generated dependencies file for newcomer_dynamics.
# This may be replaced when dependencies are built.
