
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/checkpoint_workflow.cpp" "examples/CMakeFiles/checkpoint_workflow.dir/checkpoint_workflow.cpp.o" "gcc" "examples/CMakeFiles/checkpoint_workflow.dir/checkpoint_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedclust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedclust_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedclust_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedclust_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fedclust_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/fedclust_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedclust_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
