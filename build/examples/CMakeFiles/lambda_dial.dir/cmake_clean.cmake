file(REMOVE_RECURSE
  "CMakeFiles/lambda_dial.dir/lambda_dial.cpp.o"
  "CMakeFiles/lambda_dial.dir/lambda_dial.cpp.o.d"
  "lambda_dial"
  "lambda_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
