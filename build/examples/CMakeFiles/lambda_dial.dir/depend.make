# Empty dependencies file for lambda_dial.
# This may be replaced when dependencies are built.
