file(REMOVE_RECURSE
  "CMakeFiles/table1_accuracy_skew20.dir/table1_accuracy_skew20.cpp.o"
  "CMakeFiles/table1_accuracy_skew20.dir/table1_accuracy_skew20.cpp.o.d"
  "table1_accuracy_skew20"
  "table1_accuracy_skew20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_accuracy_skew20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
