# Empty dependencies file for table1_accuracy_skew20.
# This may be replaced when dependencies are built.
