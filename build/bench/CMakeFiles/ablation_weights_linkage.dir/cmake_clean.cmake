file(REMOVE_RECURSE
  "CMakeFiles/ablation_weights_linkage.dir/ablation_weights_linkage.cpp.o"
  "CMakeFiles/ablation_weights_linkage.dir/ablation_weights_linkage.cpp.o.d"
  "ablation_weights_linkage"
  "ablation_weights_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weights_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
