# Empty dependencies file for ablation_weights_linkage.
# This may be replaced when dependencies are built.
