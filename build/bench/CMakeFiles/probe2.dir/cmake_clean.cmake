file(REMOVE_RECURSE
  "../tools/probe2"
  "../tools/probe2.pdb"
  "CMakeFiles/probe2.dir/__/tools/probe2.cpp.o"
  "CMakeFiles/probe2.dir/__/tools/probe2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
