file(REMOVE_RECURSE
  "CMakeFiles/table5_comm_cost.dir/table5_comm_cost.cpp.o"
  "CMakeFiles/table5_comm_cost.dir/table5_comm_cost.cpp.o.d"
  "table5_comm_cost"
  "table5_comm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
