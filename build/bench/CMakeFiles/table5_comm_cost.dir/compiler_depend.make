# Empty compiler generated dependencies file for table5_comm_cost.
# This may be replaced when dependencies are built.
