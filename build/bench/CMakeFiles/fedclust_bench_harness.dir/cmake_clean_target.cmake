file(REMOVE_RECURSE
  "../lib/libfedclust_bench_harness.a"
)
