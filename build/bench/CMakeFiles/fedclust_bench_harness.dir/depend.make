# Empty dependencies file for fedclust_bench_harness.
# This may be replaced when dependencies are built.
