file(REMOVE_RECURSE
  "../lib/libfedclust_bench_harness.a"
  "../lib/libfedclust_bench_harness.pdb"
  "CMakeFiles/fedclust_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/fedclust_bench_harness.dir/harness.cpp.o.d"
  "CMakeFiles/fedclust_bench_harness.dir/table_common.cpp.o"
  "CMakeFiles/fedclust_bench_harness.dir/table_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
