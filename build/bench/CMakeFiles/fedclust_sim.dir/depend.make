# Empty dependencies file for fedclust_sim.
# This may be replaced when dependencies are built.
