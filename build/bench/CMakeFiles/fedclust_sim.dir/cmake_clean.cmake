file(REMOVE_RECURSE
  "../tools/fedclust_sim"
  "../tools/fedclust_sim.pdb"
  "CMakeFiles/fedclust_sim.dir/__/tools/fedclust_sim.cpp.o"
  "CMakeFiles/fedclust_sim.dir/__/tools/fedclust_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
