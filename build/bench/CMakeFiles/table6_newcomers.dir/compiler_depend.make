# Empty compiler generated dependencies file for table6_newcomers.
# This may be replaced when dependencies are built.
