file(REMOVE_RECURSE
  "CMakeFiles/table6_newcomers.dir/table6_newcomers.cpp.o"
  "CMakeFiles/table6_newcomers.dir/table6_newcomers.cpp.o.d"
  "table6_newcomers"
  "table6_newcomers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_newcomers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
