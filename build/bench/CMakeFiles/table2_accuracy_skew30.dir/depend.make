# Empty dependencies file for table2_accuracy_skew30.
# This may be replaced when dependencies are built.
