file(REMOVE_RECURSE
  "CMakeFiles/table2_accuracy_skew30.dir/table2_accuracy_skew30.cpp.o"
  "CMakeFiles/table2_accuracy_skew30.dir/table2_accuracy_skew30.cpp.o.d"
  "table2_accuracy_skew30"
  "table2_accuracy_skew30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_accuracy_skew30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
