file(REMOVE_RECURSE
  "../tools/probe3"
  "../tools/probe3.pdb"
  "CMakeFiles/probe3.dir/__/tools/probe3.cpp.o"
  "CMakeFiles/probe3.dir/__/tools/probe3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
