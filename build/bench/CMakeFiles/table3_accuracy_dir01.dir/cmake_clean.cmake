file(REMOVE_RECURSE
  "CMakeFiles/table3_accuracy_dir01.dir/table3_accuracy_dir01.cpp.o"
  "CMakeFiles/table3_accuracy_dir01.dir/table3_accuracy_dir01.cpp.o.d"
  "table3_accuracy_dir01"
  "table3_accuracy_dir01.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_accuracy_dir01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
