# Empty compiler generated dependencies file for table3_accuracy_dir01.
# This may be replaced when dependencies are built.
