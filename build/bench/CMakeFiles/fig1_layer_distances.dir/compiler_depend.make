# Empty compiler generated dependencies file for fig1_layer_distances.
# This may be replaced when dependencies are built.
