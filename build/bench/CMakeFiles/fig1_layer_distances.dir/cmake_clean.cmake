file(REMOVE_RECURSE
  "CMakeFiles/fig1_layer_distances.dir/fig1_layer_distances.cpp.o"
  "CMakeFiles/fig1_layer_distances.dir/fig1_layer_distances.cpp.o.d"
  "fig1_layer_distances"
  "fig1_layer_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_layer_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
