# Empty compiler generated dependencies file for table4_rounds_to_target.
# This may be replaced when dependencies are built.
