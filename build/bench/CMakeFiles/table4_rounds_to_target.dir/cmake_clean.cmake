file(REMOVE_RECURSE
  "CMakeFiles/table4_rounds_to_target.dir/table4_rounds_to_target.cpp.o"
  "CMakeFiles/table4_rounds_to_target.dir/table4_rounds_to_target.cpp.o.d"
  "table4_rounds_to_target"
  "table4_rounds_to_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rounds_to_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
