file(REMOVE_RECURSE
  "../tools/probe4"
  "../tools/probe4.pdb"
  "CMakeFiles/probe4.dir/__/tools/probe4.cpp.o"
  "CMakeFiles/probe4.dir/__/tools/probe4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
