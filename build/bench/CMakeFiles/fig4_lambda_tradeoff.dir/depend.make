# Empty dependencies file for fig4_lambda_tradeoff.
# This may be replaced when dependencies are built.
