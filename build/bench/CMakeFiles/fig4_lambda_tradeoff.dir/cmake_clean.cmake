file(REMOVE_RECURSE
  "CMakeFiles/fig4_lambda_tradeoff.dir/fig4_lambda_tradeoff.cpp.o"
  "CMakeFiles/fig4_lambda_tradeoff.dir/fig4_lambda_tradeoff.cpp.o.d"
  "fig4_lambda_tradeoff"
  "fig4_lambda_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lambda_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
