# Empty dependencies file for fedclust_tensor.
# This may be replaced when dependencies are built.
