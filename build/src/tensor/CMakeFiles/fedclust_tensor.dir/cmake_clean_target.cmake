file(REMOVE_RECURSE
  "libfedclust_tensor.a"
)
