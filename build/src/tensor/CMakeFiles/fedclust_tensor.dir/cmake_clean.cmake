file(REMOVE_RECURSE
  "CMakeFiles/fedclust_tensor.dir/gemm.cpp.o"
  "CMakeFiles/fedclust_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/fedclust_tensor.dir/im2col.cpp.o"
  "CMakeFiles/fedclust_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/fedclust_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedclust_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/fedclust_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/fedclust_tensor.dir/tensor_ops.cpp.o.d"
  "libfedclust_tensor.a"
  "libfedclust_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
