file(REMOVE_RECURSE
  "libfedclust_core.a"
)
