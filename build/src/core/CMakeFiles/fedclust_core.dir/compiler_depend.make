# Empty compiler generated dependencies file for fedclust_core.
# This may be replaced when dependencies are built.
