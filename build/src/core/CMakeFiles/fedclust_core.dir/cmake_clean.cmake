file(REMOVE_RECURSE
  "CMakeFiles/fedclust_core.dir/fedclust.cpp.o"
  "CMakeFiles/fedclust_core.dir/fedclust.cpp.o.d"
  "CMakeFiles/fedclust_core.dir/registry.cpp.o"
  "CMakeFiles/fedclust_core.dir/registry.cpp.o.d"
  "libfedclust_core.a"
  "libfedclust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
