# Empty dependencies file for fedclust_util.
# This may be replaced when dependencies are built.
