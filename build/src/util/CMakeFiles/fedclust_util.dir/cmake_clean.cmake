file(REMOVE_RECURSE
  "CMakeFiles/fedclust_util.dir/config.cpp.o"
  "CMakeFiles/fedclust_util.dir/config.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/logging.cpp.o"
  "CMakeFiles/fedclust_util.dir/logging.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/rng.cpp.o"
  "CMakeFiles/fedclust_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/serialization.cpp.o"
  "CMakeFiles/fedclust_util.dir/serialization.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/stats.cpp.o"
  "CMakeFiles/fedclust_util.dir/stats.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/table.cpp.o"
  "CMakeFiles/fedclust_util.dir/table.cpp.o.d"
  "CMakeFiles/fedclust_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fedclust_util.dir/thread_pool.cpp.o.d"
  "libfedclust_util.a"
  "libfedclust_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
