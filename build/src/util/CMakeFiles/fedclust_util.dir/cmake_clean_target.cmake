file(REMOVE_RECURSE
  "libfedclust_util.a"
)
