file(REMOVE_RECURSE
  "libfedclust_clustering.a"
)
