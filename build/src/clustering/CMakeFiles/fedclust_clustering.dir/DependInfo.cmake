
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/distance.cpp" "src/clustering/CMakeFiles/fedclust_clustering.dir/distance.cpp.o" "gcc" "src/clustering/CMakeFiles/fedclust_clustering.dir/distance.cpp.o.d"
  "/root/repo/src/clustering/hierarchical.cpp" "src/clustering/CMakeFiles/fedclust_clustering.dir/hierarchical.cpp.o" "gcc" "src/clustering/CMakeFiles/fedclust_clustering.dir/hierarchical.cpp.o.d"
  "/root/repo/src/clustering/metrics.cpp" "src/clustering/CMakeFiles/fedclust_clustering.dir/metrics.cpp.o" "gcc" "src/clustering/CMakeFiles/fedclust_clustering.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedclust_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
