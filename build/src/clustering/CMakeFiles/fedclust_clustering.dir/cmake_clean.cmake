file(REMOVE_RECURSE
  "CMakeFiles/fedclust_clustering.dir/distance.cpp.o"
  "CMakeFiles/fedclust_clustering.dir/distance.cpp.o.d"
  "CMakeFiles/fedclust_clustering.dir/hierarchical.cpp.o"
  "CMakeFiles/fedclust_clustering.dir/hierarchical.cpp.o.d"
  "CMakeFiles/fedclust_clustering.dir/metrics.cpp.o"
  "CMakeFiles/fedclust_clustering.dir/metrics.cpp.o.d"
  "libfedclust_clustering.a"
  "libfedclust_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
