# Empty compiler generated dependencies file for fedclust_clustering.
# This may be replaced when dependencies are built.
