file(REMOVE_RECURSE
  "libfedclust_fl.a"
)
