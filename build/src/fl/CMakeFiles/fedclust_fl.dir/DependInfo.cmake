
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/algorithm.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/algorithm.cpp.o.d"
  "/root/repo/src/fl/cfl.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/cfl.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/cfl.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/cluster_common.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/cluster_common.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/cluster_common.cpp.o.d"
  "/root/repo/src/fl/comm.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/comm.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/comm.cpp.o.d"
  "/root/repo/src/fl/ditto.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/ditto.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/ditto.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/fedavg.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/fedavg.cpp.o.d"
  "/root/repo/src/fl/feddyn.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/feddyn.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/feddyn.cpp.o.d"
  "/root/repo/src/fl/federation.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/federation.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/federation.cpp.o.d"
  "/root/repo/src/fl/fednova.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/fednova.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/fednova.cpp.o.d"
  "/root/repo/src/fl/fedopt.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/fedopt.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/fedopt.cpp.o.d"
  "/root/repo/src/fl/flis.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/flis.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/flis.cpp.o.d"
  "/root/repo/src/fl/ifca.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/ifca.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/ifca.cpp.o.d"
  "/root/repo/src/fl/lg_fedavg.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/lg_fedavg.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/lg_fedavg.cpp.o.d"
  "/root/repo/src/fl/local_only.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/local_only.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/local_only.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/pacfl.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/pacfl.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/pacfl.cpp.o.d"
  "/root/repo/src/fl/perfedavg.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/perfedavg.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/perfedavg.cpp.o.d"
  "/root/repo/src/fl/scaffold.cpp" "src/fl/CMakeFiles/fedclust_fl.dir/scaffold.cpp.o" "gcc" "src/fl/CMakeFiles/fedclust_fl.dir/scaffold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedclust_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedclust_data.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/fedclust_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fedclust_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedclust_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedclust_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
