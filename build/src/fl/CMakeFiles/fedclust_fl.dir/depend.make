# Empty dependencies file for fedclust_fl.
# This may be replaced when dependencies are built.
