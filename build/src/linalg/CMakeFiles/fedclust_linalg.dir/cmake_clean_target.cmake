file(REMOVE_RECURSE
  "libfedclust_linalg.a"
)
