# Empty dependencies file for fedclust_linalg.
# This may be replaced when dependencies are built.
