file(REMOVE_RECURSE
  "CMakeFiles/fedclust_linalg.dir/eigen.cpp.o"
  "CMakeFiles/fedclust_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/fedclust_linalg.dir/principal_angles.cpp.o"
  "CMakeFiles/fedclust_linalg.dir/principal_angles.cpp.o.d"
  "CMakeFiles/fedclust_linalg.dir/svd.cpp.o"
  "CMakeFiles/fedclust_linalg.dir/svd.cpp.o.d"
  "libfedclust_linalg.a"
  "libfedclust_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
