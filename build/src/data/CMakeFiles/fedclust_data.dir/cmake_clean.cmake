file(REMOVE_RECURSE
  "CMakeFiles/fedclust_data.dir/dataset.cpp.o"
  "CMakeFiles/fedclust_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedclust_data.dir/partition.cpp.o"
  "CMakeFiles/fedclust_data.dir/partition.cpp.o.d"
  "CMakeFiles/fedclust_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedclust_data.dir/synthetic.cpp.o.d"
  "libfedclust_data.a"
  "libfedclust_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
