file(REMOVE_RECURSE
  "libfedclust_data.a"
)
