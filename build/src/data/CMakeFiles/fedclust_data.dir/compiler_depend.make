# Empty compiler generated dependencies file for fedclust_data.
# This may be replaced when dependencies are built.
