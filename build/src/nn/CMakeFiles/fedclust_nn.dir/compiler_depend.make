# Empty compiler generated dependencies file for fedclust_nn.
# This may be replaced when dependencies are built.
