
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/fedclust_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/fedclust_nn.dir/residual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedclust_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
