file(REMOVE_RECURSE
  "CMakeFiles/fedclust_nn.dir/activations.cpp.o"
  "CMakeFiles/fedclust_nn.dir/activations.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/fedclust_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedclust_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/conv2d.cpp.o"
  "CMakeFiles/fedclust_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/dropout.cpp.o"
  "CMakeFiles/fedclust_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/init.cpp.o"
  "CMakeFiles/fedclust_nn.dir/init.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/linear.cpp.o"
  "CMakeFiles/fedclust_nn.dir/linear.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/loss.cpp.o"
  "CMakeFiles/fedclust_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/model.cpp.o"
  "CMakeFiles/fedclust_nn.dir/model.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/fedclust_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/module.cpp.o"
  "CMakeFiles/fedclust_nn.dir/module.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/norm.cpp.o"
  "CMakeFiles/fedclust_nn.dir/norm.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedclust_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/pooling.cpp.o"
  "CMakeFiles/fedclust_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/fedclust_nn.dir/residual.cpp.o"
  "CMakeFiles/fedclust_nn.dir/residual.cpp.o.d"
  "libfedclust_nn.a"
  "libfedclust_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedclust_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
