file(REMOVE_RECURSE
  "libfedclust_nn.a"
)
